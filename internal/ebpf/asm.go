package ebpf

// Assembler constructors. These build single Instructions with the proper
// opcode packing; they are the vocabulary used by the code generator, the
// bytecode refinement passes and the tests.

// ALU64Reg returns a 64-bit dst = dst <op> src instruction.
func ALU64Reg(op ALUOp, dst, src Register) Instruction {
	return Instruction{Opcode: uint8(ClassALU64) | uint8(SourceX) | uint8(op), Dst: dst, Src: src}
}

// ALU64Imm returns a 64-bit dst = dst <op> imm instruction.
func ALU64Imm(op ALUOp, dst Register, imm int32) Instruction {
	return Instruction{Opcode: uint8(ClassALU64) | uint8(SourceK) | uint8(op), Dst: dst, Imm: imm}
}

// ALU32Reg returns a 32-bit dst = (u32)(dst <op> src) instruction; the upper
// 32 bits of dst are zeroed.
func ALU32Reg(op ALUOp, dst, src Register) Instruction {
	return Instruction{Opcode: uint8(ClassALU) | uint8(SourceX) | uint8(op), Dst: dst, Src: src}
}

// ALU32Imm returns a 32-bit dst = (u32)(dst <op> imm) instruction.
func ALU32Imm(op ALUOp, dst Register, imm int32) Instruction {
	return Instruction{Opcode: uint8(ClassALU) | uint8(SourceK) | uint8(op), Dst: dst, Imm: imm}
}

// Mov64Reg returns movq dst, src.
func Mov64Reg(dst, src Register) Instruction { return ALU64Reg(ALUMov, dst, src) }

// Mov64Imm returns movq dst, imm (sign-extended 32-bit immediate).
func Mov64Imm(dst Register, imm int32) Instruction { return ALU64Imm(ALUMov, dst, imm) }

// Mov32Reg returns movl dst, src: copies the low 32 bits and zeroes the rest.
func Mov32Reg(dst, src Register) Instruction { return ALU32Reg(ALUMov, dst, src) }

// Mov32Imm returns movl dst, imm with zero extension.
func Mov32Imm(dst Register, imm int32) Instruction { return ALU32Imm(ALUMov, dst, imm) }

// LoadImm64 returns the wide lddw dst, imm64 instruction (two slots).
func LoadImm64(dst Register, imm int64) Instruction {
	return Instruction{
		Opcode: uint8(ClassLD) | uint8(ModeIMM) | uint8(SizeDW),
		Dst:    dst,
		Imm:    int32(uint64(imm) & 0xffffffff),
		Imm64:  imm,
	}
}

// LoadMem returns ldx.<size> dst, [src+off].
func LoadMem(size Size, dst, src Register, off int16) Instruction {
	return Instruction{Opcode: uint8(ClassLDX) | uint8(ModeMEM) | uint8(size), Dst: dst, Src: src, Offset: off}
}

// StoreMem returns stx.<size> [dst+off], src.
func StoreMem(size Size, dst Register, off int16, src Register) Instruction {
	return Instruction{Opcode: uint8(ClassSTX) | uint8(ModeMEM) | uint8(size), Dst: dst, Src: src, Offset: off}
}

// StoreImm returns st.<size> [dst+off], imm.
func StoreImm(size Size, dst Register, off int16, imm int32) Instruction {
	return Instruction{Opcode: uint8(ClassST) | uint8(ModeMEM) | uint8(size), Dst: dst, Offset: off, Imm: imm}
}

// Atomic returns the locked read-modify-write [dst+off] <op>= src.
// Only SizeW and SizeDW are legal widths.
func Atomic(size Size, op AtomicOp, dst Register, off int16, src Register) Instruction {
	return Instruction{Opcode: uint8(ClassSTX) | uint8(ModeATOMIC) | uint8(size), Dst: dst, Src: src, Offset: off, Imm: int32(op)}
}

// Jump returns the unconditional ja +off.
func Jump(off int16) Instruction {
	return Instruction{Opcode: uint8(ClassJMP) | uint8(JumpAlways), Offset: off}
}

// JumpReg returns the 64-bit conditional branch if dst <op> src goto +off.
func JumpReg(op JumpOp, dst, src Register, off int16) Instruction {
	return Instruction{Opcode: uint8(ClassJMP) | uint8(SourceX) | uint8(op), Dst: dst, Src: src, Offset: off}
}

// JumpImm returns the 64-bit conditional branch if dst <op> imm goto +off.
func JumpImm(op JumpOp, dst Register, imm int32, off int16) Instruction {
	return Instruction{Opcode: uint8(ClassJMP) | uint8(SourceK) | uint8(op), Dst: dst, Imm: imm, Offset: off}
}

// Jump32Reg returns the 32-bit conditional branch comparing the low halves.
func Jump32Reg(op JumpOp, dst, src Register, off int16) Instruction {
	return Instruction{Opcode: uint8(ClassJMP32) | uint8(SourceX) | uint8(op), Dst: dst, Src: src, Offset: off}
}

// Jump32Imm returns the 32-bit conditional branch against an immediate.
func Jump32Imm(op JumpOp, dst Register, imm int32, off int16) Instruction {
	return Instruction{Opcode: uint8(ClassJMP32) | uint8(SourceK) | uint8(op), Dst: dst, Imm: imm, Offset: off}
}

// Call returns a helper call by helper number.
func Call(helper int32) Instruction {
	return Instruction{Opcode: uint8(ClassJMP) | uint8(JumpCall), Imm: helper}
}

// Exit returns the exit instruction.
func Exit() Instruction {
	return Instruction{Opcode: uint8(ClassJMP) | uint8(JumpExit)}
}
