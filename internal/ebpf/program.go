package ebpf

import (
	"encoding/binary"
	"fmt"
)

// HookType identifies where a program attaches. It gates which helpers are
// legal and which context layout the verifier and VM assume.
type HookType uint8

// Supported hook types.
const (
	HookXDP HookType = iota
	HookTracepoint
	HookKprobe
	HookSocketFilter
)

func (h HookType) String() string {
	switch h {
	case HookXDP:
		return "xdp"
	case HookTracepoint:
		return "tracepoint"
	case HookKprobe:
		return "kprobe"
	case HookSocketFilter:
		return "socket_filter"
	}
	return fmt.Sprintf("hook(%d)", uint8(h))
}

// XDP program verdicts, returned in r0.
const (
	XDPAborted  int64 = 0
	XDPDrop     int64 = 1
	XDPPass     int64 = 2
	XDPTx       int64 = 3
	XDPRedirect int64 = 4
)

// MapSpec describes a map the program references via lddw pseudo loads.
// Kind values correspond to ir.MapKind.
type MapSpec struct {
	Name       string
	Kind       int
	KeySize    int
	ValueSize  int
	MaxEntries int
}

// Program is a sequence of eBPF instructions plus attachment metadata.
// Wide lddw instructions occupy a single slice element; NI (the paper's
// instruction-count metric) counts encoding slots, so a lddw contributes 2.
type Program struct {
	Name string
	Hook HookType
	// MCPU is the instruction-set level the program was compiled for:
	// 2 disallows ALU32 and JMP32, 3 allows them (paper §5.1).
	MCPU  int
	Insns []Instruction
	Maps  []MapSpec
}

// PseudoMapFD in the Src field of a wide lddw marks the immediate as a map
// reference (the map's index into Program.Maps) rather than a plain constant,
// mirroring BPF_PSEUDO_MAP_FD.
const PseudoMapFD Register = 1

// LoadMapPtr returns the wide pseudo instruction loading a map reference.
func LoadMapPtr(dst Register, mapIndex int) Instruction {
	ins := LoadImm64(dst, int64(mapIndex))
	ins.Src = PseudoMapFD
	return ins
}

// IsMapLoad reports whether ins is a map-reference pseudo load.
func (ins Instruction) IsMapLoad() bool {
	return ins.IsWide() && ins.Src == PseudoMapFD
}

// NI returns the Number of Instructions metric: encoded size in 8-byte slots.
func (p *Program) NI() int {
	n := 0
	for _, ins := range p.Insns {
		n += ins.Slots()
	}
	return n
}

// Clone returns a deep copy of the program.
func (p *Program) Clone() *Program {
	q := *p
	q.Insns = append([]Instruction(nil), p.Insns...)
	q.Maps = append([]MapSpec(nil), p.Maps...)
	return &q
}

// SlotIndex returns, for each instruction element, its starting slot, plus
// the total slot count as the final extra entry.
func (p *Program) SlotIndex() []int {
	idx := make([]int, len(p.Insns)+1)
	slot := 0
	for i, ins := range p.Insns {
		idx[i] = slot
		slot += ins.Slots()
	}
	idx[len(p.Insns)] = slot
	return idx
}

// BranchTarget returns the element index a branch at element i jumps to.
// It panics if instruction i is not a branch. Offsets are encoded in slots
// relative to the next instruction, matching the wire format.
func (p *Program) BranchTarget(i int) int {
	ins := p.Insns[i]
	if !ins.IsCondJump() && !ins.IsUncondJump() {
		panic(fmt.Sprintf("ebpf: instruction %d (%s) is not a branch", i, Mnemonic(ins)))
	}
	idx := p.SlotIndex()
	want := idx[i] + ins.Slots() + int(ins.Offset)
	for j := 0; j <= len(p.Insns); j++ {
		if idx[j] == want {
			return j
		}
	}
	return -1
}

// Encode serializes the program to the 8-byte wire format.
func (p *Program) Encode() []byte {
	buf := make([]byte, 0, 8*p.NI())
	for _, ins := range p.Insns {
		buf = appendInsn(buf, ins)
	}
	return buf
}

func appendInsn(buf []byte, ins Instruction) []byte {
	var b [8]byte
	b[0] = ins.Opcode
	b[1] = uint8(ins.Dst&0x0f) | uint8(ins.Src&0x0f)<<4
	binary.LittleEndian.PutUint16(b[2:], uint16(ins.Offset))
	binary.LittleEndian.PutUint32(b[4:], uint32(ins.Imm))
	buf = append(buf, b[:]...)
	if ins.IsWide() {
		var hi [8]byte
		binary.LittleEndian.PutUint32(hi[4:], uint32(uint64(ins.Imm64)>>32))
		buf = append(buf, hi[:]...)
	}
	return buf
}

// Decode parses wire-format bytes into instructions, merging lddw pairs.
func Decode(raw []byte) ([]Instruction, error) {
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("ebpf: program length %d is not a multiple of 8", len(raw))
	}
	var out []Instruction
	for i := 0; i < len(raw); i += 8 {
		ins := Instruction{
			Opcode: raw[i],
			Dst:    Register(raw[i+1] & 0x0f),
			Src:    Register(raw[i+1] >> 4),
			Offset: int16(binary.LittleEndian.Uint16(raw[i+2:])),
			Imm:    int32(binary.LittleEndian.Uint32(raw[i+4:])),
		}
		if ins.IsWide() {
			if i+16 > len(raw) {
				return nil, fmt.Errorf("ebpf: truncated lddw at slot %d", i/8)
			}
			hi := binary.LittleEndian.Uint32(raw[i+12:])
			ins.Imm64 = int64(uint64(uint32(ins.Imm)) | uint64(hi)<<32)
			i += 8
		}
		out = append(out, ins)
	}
	return out, nil
}

// Editable is a branch-target-resolved view of a program used by rewriting
// passes. Targets are element indices, so instructions can be deleted,
// replaced, or inserted without manual offset arithmetic; Finalize re-encodes
// slot-relative offsets.
type Editable struct {
	prog   *Program
	Insns  []Instruction
	Target []int // element index of branch target, or -1 for non-branches
}

// MakeEditable resolves branch targets of p into an Editable view.
// It returns an error if any branch lands outside the program or into the
// middle of a wide instruction.
func MakeEditable(p *Program) (*Editable, error) {
	e := &Editable{
		prog:   p,
		Insns:  append([]Instruction(nil), p.Insns...),
		Target: make([]int, len(p.Insns)),
	}
	idx := p.SlotIndex()
	slotToElem := make(map[int]int, len(p.Insns))
	for i := range p.Insns {
		slotToElem[idx[i]] = i
	}
	for i, ins := range e.Insns {
		e.Target[i] = -1
		if ins.IsCondJump() || ins.IsUncondJump() {
			want := idx[i] + ins.Slots() + int(ins.Offset)
			j, ok := slotToElem[want]
			if !ok {
				return nil, fmt.Errorf("ebpf: %s: branch at %d targets invalid slot %d", p.Name, i, want)
			}
			e.Target[i] = j
		}
	}
	return e, nil
}

// Delete removes instruction i. Branches that targeted i now target its
// successor. Deleting a branch target's only definition is the caller's
// responsibility to have proven safe.
func (e *Editable) Delete(i int) {
	e.Insns = append(e.Insns[:i], e.Insns[i+1:]...)
	e.Target = append(e.Target[:i], e.Target[i+1:]...)
	for k, t := range e.Target {
		if t > i {
			e.Target[k] = t - 1
		}
	}
}

// Replace swaps instruction i for ins, keeping its branch target (if the
// replacement is a branch, target must be set via SetTarget).
func (e *Editable) Replace(i int, ins Instruction) {
	e.Insns[i] = ins
	if !ins.IsCondJump() && !ins.IsUncondJump() {
		e.Target[i] = -1
	}
}

// SetTarget points branch instruction i at element j.
func (e *Editable) SetTarget(i, j int) { e.Target[i] = j }

// InsertBefore inserts ins ahead of element i. Branches targeting i are
// redirected to the inserted instruction so fall-through semantics hold.
func (e *Editable) InsertBefore(i int, ins Instruction) {
	e.Insns = append(e.Insns, Instruction{})
	copy(e.Insns[i+1:], e.Insns[i:])
	e.Insns[i] = ins
	e.Target = append(e.Target, 0)
	copy(e.Target[i+1:], e.Target[i:])
	e.Target[i] = -1
	for k := range e.Target {
		if k == i {
			continue
		}
		if e.Target[k] >= i {
			e.Target[k]++
		}
	}
}

// Finalize recomputes slot-relative branch offsets and returns the program.
func (e *Editable) Finalize() (*Program, error) {
	out := &Program{Name: e.prog.Name, Hook: e.prog.Hook, MCPU: e.prog.MCPU, Insns: e.Insns, Maps: e.prog.Maps}
	idx := out.SlotIndex()
	for i := range e.Insns {
		t := e.Target[i]
		if t < 0 {
			continue
		}
		if t > len(e.Insns) {
			return nil, fmt.Errorf("ebpf: %s: branch at %d targets out-of-range element %d", out.Name, i, t)
		}
		off := idx[t] - (idx[i] + e.Insns[i].Slots())
		if off < -32768 || off > 32767 {
			return nil, fmt.Errorf("ebpf: %s: branch offset %d out of int16 range", out.Name, off)
		}
		e.Insns[i].Offset = int16(off)
	}
	return out, nil
}
