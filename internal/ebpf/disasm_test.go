package ebpf

import (
	"strings"
	"testing"
)

func TestMnemonicCoversALUOps(t *testing.T) {
	cases := map[string]Instruction{
		"r1 += 2":             ALU64Imm(ALUAdd, R1, 2),
		"r1 -= 2":             ALU64Imm(ALUSub, R1, 2),
		"r1 *= 2":             ALU64Imm(ALUMul, R1, 2),
		"r1 /= 2":             ALU64Imm(ALUDiv, R1, 2),
		"r1 %= 2":             ALU64Imm(ALUMod, R1, 2),
		"r1 |= 2":             ALU64Imm(ALUOr, R1, 2),
		"r1 &= 2":             ALU64Imm(ALUAnd, R1, 2),
		"r1 ^= 2":             ALU64Imm(ALUXor, R1, 2),
		"r1 s>>= 2":           ALU64Imm(ALUArsh, R1, 2),
		"r1 += r2":            ALU64Reg(ALUAdd, R1, R2),
		"w1 ^= w2":            ALU32Reg(ALUXor, R1, R2),
		"w3 = 7":              Mov32Imm(R3, 7),
		"r1 = -r1":            {Opcode: uint8(ClassALU64) | uint8(ALUNeg), Dst: R1},
		"goto +3":             Jump(3),
		"if r1 != 0 goto +1":  JumpImm(JumpNE, R1, 0, 1),
		"if r1 & 4 goto +1":   JumpImm(JumpSet, R1, 4, 1),
		"if r1 s> 4 goto +1":  JumpImm(JumpSGT, R1, 4, 1),
		"if r1 s>= 4 goto +1": JumpImm(JumpSGE, R1, 4, 1),
		"if r1 s< 4 goto +1":  JumpImm(JumpSLT, R1, 4, 1),
		"if r1 s<= 4 goto +1": JumpImm(JumpSLE, R1, 4, 1),
		"if r1 >= r2 goto +1": JumpReg(JumpGE, R1, R2, 1),
		"if r1 <= r2 goto +1": JumpReg(JumpLE, R1, R2, 1),
		"if w1 < w2 goto +1":  Jump32Reg(JumpLT, R1, R2, 1),
		"if w1 == 3 goto +1":  Jump32Imm(JumpEq, R1, 3, 1),
	}
	for want, ins := range cases {
		if got := Mnemonic(ins); got != want {
			t.Errorf("Mnemonic = %q, want %q", got, want)
		}
	}
}

func TestMnemonicBswapAndAtomicVariants(t *testing.T) {
	bs := Instruction{Opcode: uint8(ClassALU) | uint8(SourceX) | uint8(ALUEnd), Dst: R2, Imm: 16}
	if got := Mnemonic(bs); !strings.Contains(got, "bswap16") {
		t.Errorf("bswap mnemonic = %q", got)
	}
	for _, c := range []struct {
		op   AtomicOp
		want string
	}{
		{AtomicOr, "|="}, {AtomicAnd, "&="}, {AtomicXor, "^="},
	} {
		ins := Atomic(SizeW, c.op, R1, -4, R2)
		if got := Mnemonic(ins); !strings.Contains(got, c.want) {
			t.Errorf("%v: mnemonic = %q, want %q", c.op, got, c.want)
		}
	}
}

func TestMnemonicMapLoad(t *testing.T) {
	if got := Mnemonic(LoadMapPtr(R1, 3)); got != "r1 = map[3] ll" {
		t.Errorf("map load mnemonic = %q", got)
	}
}

func TestStringers(t *testing.T) {
	classes := map[Class]string{
		ClassLD: "ld", ClassLDX: "ldx", ClassST: "st", ClassSTX: "stx",
		ClassALU: "alu32", ClassJMP: "jmp", ClassJMP32: "jmp32", ClassALU64: "alu64",
	}
	for c, want := range classes {
		if c.String() != want {
			t.Errorf("Class %v = %q", c, c.String())
		}
	}
	sizes := map[Size]string{SizeB: "u8", SizeH: "u16", SizeW: "u32", SizeDW: "u64"}
	for s, want := range sizes {
		if s.String() != want {
			t.Errorf("Size %v = %q", s, s.String())
		}
	}
	hooks := map[HookType]string{
		HookXDP: "xdp", HookTracepoint: "tracepoint",
		HookKprobe: "kprobe", HookSocketFilter: "socket_filter",
	}
	for h, want := range hooks {
		if h.String() != want {
			t.Errorf("Hook %v = %q", h, h.String())
		}
	}
	for op := ALUAdd; op <= ALUEnd; op += 0x10 {
		if strings.Contains(op.String(), "alu(") {
			t.Errorf("ALUOp %#x has no name", uint8(op))
		}
	}
	for op := JumpAlways; op <= JumpSLE; op += 0x10 {
		if strings.Contains(op.String(), "jmp(") {
			t.Errorf("JumpOp %#x has no name", uint8(op))
		}
	}
	for _, a := range []AtomicOp{AtomicAdd, AtomicOr, AtomicAnd, AtomicXor} {
		if strings.Contains(a.String(), "atomic(") {
			t.Errorf("AtomicOp %v has no name", a)
		}
	}
}

func TestEditableErrors(t *testing.T) {
	// Branch into the middle of a wide instruction.
	p := &Program{Insns: []Instruction{
		JumpImm(JumpEq, R1, 0, 1), // lands inside the lddw
		LoadImm64(R2, 1),
		Exit(),
	}}
	if _, err := MakeEditable(p); err == nil {
		t.Fatal("branch into lddw accepted")
	}
	// Offset overflow on finalize.
	q := &Program{Insns: []Instruction{JumpImm(JumpEq, R1, 0, 0), Exit()}}
	e, err := MakeEditable(q)
	if err != nil {
		t.Fatal(err)
	}
	e.SetTarget(0, 99)
	if _, err := e.Finalize(); err == nil {
		t.Fatal("out-of-range target accepted")
	}
}

func TestBranchTargetPanicsOnNonBranch(t *testing.T) {
	p := &Program{Insns: []Instruction{Mov64Imm(R0, 0), Exit()}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	p.BranchTarget(0)
}

func TestProgramClone(t *testing.T) {
	p := &Program{
		Name: "x", Hook: HookXDP, MCPU: 3,
		Insns: []Instruction{Mov64Imm(R0, 0), Exit()},
		Maps:  []MapSpec{{Name: "m", KeySize: 4, ValueSize: 8, MaxEntries: 1}},
	}
	q := p.Clone()
	q.Insns[0].Imm = 99
	q.Maps[0].Name = "changed"
	if p.Insns[0].Imm != 0 || p.Maps[0].Name != "m" {
		t.Fatal("Clone shares storage with the original")
	}
}
