// Package ebpf implements the classic eBPF instruction set: 64-bit
// fixed-width instructions, ten general-purpose registers plus a read-only
// frame pointer, and the ALU/ALU64/JMP/JMP32/LD/LDX/ST/STX instruction
// classes described by the kernel's instruction-set document.
//
// The package provides encoding and decoding to the 8-byte wire format,
// a small assembler API for constructing instructions, and a disassembler
// that prints the same mnemonics used throughout the Merlin paper
// (movq/movl/shlq/xaddq and friends).
package ebpf

import "fmt"

// Register is one of the eBPF VM registers r0-r10.
type Register uint8

// eBPF registers. R0 holds return values, R1-R5 are caller-saved argument
// registers, R6-R9 are callee-saved, and R10 is the read-only frame pointer.
const (
	R0 Register = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10 // frame pointer, read-only

	// NumRegisters is the number of addressable registers.
	NumRegisters = 11
	// PseudoReg marks an unassigned virtual register slot in intermediate
	// code; it never appears in encoded programs.
	PseudoReg Register = 0xff
)

func (r Register) String() string {
	if r == PseudoReg {
		return "r?"
	}
	return fmt.Sprintf("r%d", uint8(r))
}

// Valid reports whether r names a real eBPF register.
func (r Register) Valid() bool { return r < NumRegisters }

// Class is the low 3 bits of an opcode.
type Class uint8

// Instruction classes.
const (
	ClassLD    Class = 0x00 // 64-bit immediate load (and legacy abs/ind)
	ClassLDX   Class = 0x01 // load from memory into register
	ClassST    Class = 0x02 // store immediate to memory
	ClassSTX   Class = 0x03 // store register to memory (and atomics)
	ClassALU   Class = 0x04 // 32-bit arithmetic
	ClassJMP   Class = 0x05 // 64-bit compare-and-jump, call, exit
	ClassJMP32 Class = 0x06 // 32-bit compare-and-jump
	ClassALU64 Class = 0x07 // 64-bit arithmetic
)

func (c Class) String() string {
	switch c {
	case ClassLD:
		return "ld"
	case ClassLDX:
		return "ldx"
	case ClassST:
		return "st"
	case ClassSTX:
		return "stx"
	case ClassALU:
		return "alu32"
	case ClassJMP:
		return "jmp"
	case ClassJMP32:
		return "jmp32"
	case ClassALU64:
		return "alu64"
	}
	return fmt.Sprintf("class(%#x)", uint8(c))
}

// IsALU reports whether the class is ALU or ALU64.
func (c Class) IsALU() bool { return c == ClassALU || c == ClassALU64 }

// IsJump reports whether the class is JMP or JMP32.
func (c Class) IsJump() bool { return c == ClassJMP || c == ClassJMP32 }

// IsLoad reports whether the class reads memory (LD or LDX).
func (c Class) IsLoad() bool { return c == ClassLD || c == ClassLDX }

// IsStore reports whether the class writes memory (ST or STX).
func (c Class) IsStore() bool { return c == ClassST || c == ClassSTX }

// Size is the width field of load/store opcodes (bits 3-4).
type Size uint8

// Memory operation widths.
const (
	SizeW  Size = 0x00 // 4 bytes
	SizeH  Size = 0x08 // 2 bytes
	SizeB  Size = 0x10 // 1 byte
	SizeDW Size = 0x18 // 8 bytes
)

// Bytes returns the width in bytes.
func (s Size) Bytes() int {
	switch s {
	case SizeB:
		return 1
	case SizeH:
		return 2
	case SizeW:
		return 4
	case SizeDW:
		return 8
	}
	return 0
}

// SizeForBytes returns the Size encoding for n bytes and whether n is a
// valid eBPF access width.
func SizeForBytes(n int) (Size, bool) {
	switch n {
	case 1:
		return SizeB, true
	case 2:
		return SizeH, true
	case 4:
		return SizeW, true
	case 8:
		return SizeDW, true
	}
	return 0, false
}

func (s Size) String() string {
	switch s {
	case SizeB:
		return "u8"
	case SizeH:
		return "u16"
	case SizeW:
		return "u32"
	case SizeDW:
		return "u64"
	}
	return fmt.Sprintf("size(%#x)", uint8(s))
}

// Mode is the addressing-mode field of load/store opcodes (bits 5-7).
type Mode uint8

// Addressing modes.
const (
	ModeIMM    Mode = 0x00 // used with ClassLD for the wide lddw
	ModeABS    Mode = 0x20 // legacy packet access (unused by codegen)
	ModeIND    Mode = 0x40 // legacy packet access (unused by codegen)
	ModeMEM    Mode = 0x60 // regular register+offset access
	ModeATOMIC Mode = 0xc0 // atomic read-modify-write (STX only)
)

// ALUOp is the operation field of ALU/ALU64 opcodes (bits 4-7).
type ALUOp uint8

// ALU operations.
const (
	ALUAdd  ALUOp = 0x00
	ALUSub  ALUOp = 0x10
	ALUMul  ALUOp = 0x20
	ALUDiv  ALUOp = 0x30
	ALUOr   ALUOp = 0x40
	ALUAnd  ALUOp = 0x50
	ALULsh  ALUOp = 0x60
	ALURsh  ALUOp = 0x70
	ALUNeg  ALUOp = 0x80
	ALUMod  ALUOp = 0x90
	ALUXor  ALUOp = 0xa0
	ALUMov  ALUOp = 0xb0
	ALUArsh ALUOp = 0xc0
	ALUEnd  ALUOp = 0xd0 // byte swap
)

func (op ALUOp) String() string {
	switch op {
	case ALUAdd:
		return "add"
	case ALUSub:
		return "sub"
	case ALUMul:
		return "mul"
	case ALUDiv:
		return "div"
	case ALUOr:
		return "or"
	case ALUAnd:
		return "and"
	case ALULsh:
		return "lsh"
	case ALURsh:
		return "rsh"
	case ALUNeg:
		return "neg"
	case ALUMod:
		return "mod"
	case ALUXor:
		return "xor"
	case ALUMov:
		return "mov"
	case ALUArsh:
		return "arsh"
	case ALUEnd:
		return "end"
	}
	return fmt.Sprintf("alu(%#x)", uint8(op))
}

// JumpOp is the operation field of JMP/JMP32 opcodes (bits 4-7).
type JumpOp uint8

// Jump operations.
const (
	JumpAlways JumpOp = 0x00
	JumpEq     JumpOp = 0x10
	JumpGT     JumpOp = 0x20
	JumpGE     JumpOp = 0x30
	JumpSet    JumpOp = 0x40
	JumpNE     JumpOp = 0x50
	JumpSGT    JumpOp = 0x60
	JumpSGE    JumpOp = 0x70
	JumpCall   JumpOp = 0x80
	JumpExit   JumpOp = 0x90
	JumpLT     JumpOp = 0xa0
	JumpLE     JumpOp = 0xb0
	JumpSLT    JumpOp = 0xc0
	JumpSLE    JumpOp = 0xd0
)

func (op JumpOp) String() string {
	switch op {
	case JumpAlways:
		return "ja"
	case JumpEq:
		return "jeq"
	case JumpGT:
		return "jgt"
	case JumpGE:
		return "jge"
	case JumpSet:
		return "jset"
	case JumpNE:
		return "jne"
	case JumpSGT:
		return "jsgt"
	case JumpSGE:
		return "jsge"
	case JumpCall:
		return "call"
	case JumpExit:
		return "exit"
	case JumpLT:
		return "jlt"
	case JumpLE:
		return "jle"
	case JumpSLT:
		return "jslt"
	case JumpSLE:
		return "jsle"
	}
	return fmt.Sprintf("jmp(%#x)", uint8(op))
}

// Source selects the second ALU/JMP operand: an immediate (K) or a register (X).
type Source uint8

// Operand sources.
const (
	SourceK Source = 0x00 // 32-bit immediate
	SourceX Source = 0x08 // source register
)

// AtomicOp is the Imm field value of an atomic STX instruction.
type AtomicOp int32

// Atomic operations (subset implemented by the kernel for stx.atomic).
const (
	AtomicAdd = AtomicOp(ALUAdd)
	AtomicOr  = AtomicOp(ALUOr)
	AtomicAnd = AtomicOp(ALUAnd)
	AtomicXor = AtomicOp(ALUXor)
)

func (a AtomicOp) String() string {
	switch a {
	case AtomicAdd:
		return "xadd"
	case AtomicOr:
		return "xor_"
	case AtomicAnd:
		return "xand"
	case AtomicXor:
		return "xxor"
	}
	return fmt.Sprintf("atomic(%#x)", int32(a))
}

// Instruction is a single decoded eBPF instruction. A wide lddw
// (ClassLD|ModeIMM|SizeDW) occupies two encoded slots but is represented as
// one Instruction with the full 64-bit constant in Imm64.
type Instruction struct {
	Opcode uint8
	Dst    Register
	Src    Register
	Offset int16
	Imm    int32
	Imm64  int64 // only meaningful when IsWide()
}

// Class returns the instruction class (low 3 opcode bits).
func (ins Instruction) Class() Class { return Class(ins.Opcode & 0x07) }

// SizeField returns the width field of a load/store opcode.
func (ins Instruction) SizeField() Size { return Size(ins.Opcode & 0x18) }

// ModeField returns the addressing-mode field of a load/store opcode.
func (ins Instruction) ModeField() Mode { return Mode(ins.Opcode & 0xe0) }

// ALUOpField returns the operation of an ALU/ALU64 instruction.
func (ins Instruction) ALUOpField() ALUOp { return ALUOp(ins.Opcode & 0xf0) }

// JumpOpField returns the operation of a JMP/JMP32 instruction.
func (ins Instruction) JumpOpField() JumpOp { return JumpOp(ins.Opcode & 0xf0) }

// SourceField returns whether the second operand is an immediate or register.
func (ins Instruction) SourceField() Source { return Source(ins.Opcode & 0x08) }

// IsWide reports whether ins is a two-slot lddw (64-bit immediate load).
func (ins Instruction) IsWide() bool {
	return ins.Class() == ClassLD && ins.ModeField() == ModeIMM && ins.SizeField() == SizeDW
}

// Slots returns the number of 8-byte encoding slots the instruction uses.
func (ins Instruction) Slots() int {
	if ins.IsWide() {
		return 2
	}
	return 1
}

// IsExit reports whether ins is the exit instruction.
func (ins Instruction) IsExit() bool {
	return ins.Class() == ClassJMP && ins.JumpOpField() == JumpExit
}

// IsCall reports whether ins is a helper call.
func (ins Instruction) IsCall() bool {
	return ins.Class() == ClassJMP && ins.JumpOpField() == JumpCall
}

// IsAtomic reports whether ins is an atomic store (stx.atomic / xadd family).
func (ins Instruction) IsAtomic() bool {
	return ins.Class() == ClassSTX && ins.ModeField() == ModeATOMIC
}

// IsUncondJump reports whether ins is an unconditional ja.
func (ins Instruction) IsUncondJump() bool {
	return ins.Class() == ClassJMP && ins.JumpOpField() == JumpAlways
}

// IsCondJump reports whether ins is a conditional branch.
func (ins Instruction) IsCondJump() bool {
	c := ins.Class()
	if !c.IsJump() {
		return false
	}
	op := ins.JumpOpField()
	return op != JumpAlways && op != JumpCall && op != JumpExit
}

// Terminates reports whether control cannot fall through ins
// (exit or unconditional jump).
func (ins Instruction) Terminates() bool { return ins.IsExit() || ins.IsUncondJump() }
