package ebpf

import (
	"fmt"
	"strings"
)

// Mnemonic renders one instruction in the bpftool/verifier-log style, e.g.
//
//	r2 = *(u8 *)(r0 + 36)
//	r1 <<= 32
//	if r3 > 54 goto +7
//	lock *(u64 *)(r0 + 16) += r1
func Mnemonic(ins Instruction) string {
	switch ins.Class() {
	case ClassALU, ClassALU64:
		return aluMnemonic(ins)
	case ClassJMP, ClassJMP32:
		return jumpMnemonic(ins)
	case ClassLD:
		if ins.IsMapLoad() {
			return fmt.Sprintf("%s = map[%d] ll", ins.Dst, ins.Imm64)
		}
		if ins.IsWide() {
			return fmt.Sprintf("%s = %#x ll", ins.Dst, uint64(ins.Imm64))
		}
	case ClassLDX:
		if ins.ModeField() == ModeMEM {
			return fmt.Sprintf("%s = *(%s *)(%s %s)", ins.Dst, ins.SizeField(), ins.Src, offStr(ins.Offset))
		}
	case ClassST:
		if ins.ModeField() == ModeMEM {
			return fmt.Sprintf("*(%s *)(%s %s) = %d", ins.SizeField(), ins.Dst, offStr(ins.Offset), ins.Imm)
		}
	case ClassSTX:
		switch ins.ModeField() {
		case ModeMEM:
			return fmt.Sprintf("*(%s *)(%s %s) = %s", ins.SizeField(), ins.Dst, offStr(ins.Offset), ins.Src)
		case ModeATOMIC:
			return fmt.Sprintf("lock *(%s *)(%s %s) %s= %s",
				ins.SizeField(), ins.Dst, offStr(ins.Offset), atomicSym(AtomicOp(ins.Imm)), ins.Src)
		}
	}
	return fmt.Sprintf(".byte opcode=%#02x dst=%s src=%s off=%d imm=%d", ins.Opcode, ins.Dst, ins.Src, ins.Offset, ins.Imm)
}

func offStr(off int16) string {
	if off < 0 {
		return fmt.Sprintf("- %d", -int(off))
	}
	return fmt.Sprintf("+ %d", off)
}

func atomicSym(op AtomicOp) string {
	switch op {
	case AtomicAdd:
		return "+"
	case AtomicOr:
		return "|"
	case AtomicAnd:
		return "&"
	case AtomicXor:
		return "^"
	}
	return "?"
}

func aluSym(op ALUOp) string {
	switch op {
	case ALUAdd:
		return "+="
	case ALUSub:
		return "-="
	case ALUMul:
		return "*="
	case ALUDiv:
		return "/="
	case ALUOr:
		return "|="
	case ALUAnd:
		return "&="
	case ALULsh:
		return "<<="
	case ALURsh:
		return ">>="
	case ALUMod:
		return "%="
	case ALUXor:
		return "^="
	case ALUMov:
		return "="
	case ALUArsh:
		return "s>>="
	}
	return "?="
}

func aluMnemonic(ins Instruction) string {
	dst := ins.Dst.String()
	if ins.Class() == ClassALU {
		dst = "w" + dst[1:]
	}
	op := ins.ALUOpField()
	if op == ALUNeg {
		return fmt.Sprintf("%s = -%s", dst, dst)
	}
	if op == ALUEnd {
		return fmt.Sprintf("%s = bswap%d %s", dst, ins.Imm, dst)
	}
	if ins.SourceField() == SourceX {
		src := ins.Src.String()
		if ins.Class() == ClassALU {
			src = "w" + src[1:]
		}
		return fmt.Sprintf("%s %s %s", dst, aluSym(op), src)
	}
	return fmt.Sprintf("%s %s %d", dst, aluSym(op), ins.Imm)
}

func jumpSym(op JumpOp) string {
	switch op {
	case JumpEq:
		return "=="
	case JumpGT:
		return ">"
	case JumpGE:
		return ">="
	case JumpSet:
		return "&"
	case JumpNE:
		return "!="
	case JumpSGT:
		return "s>"
	case JumpSGE:
		return "s>="
	case JumpLT:
		return "<"
	case JumpLE:
		return "<="
	case JumpSLT:
		return "s<"
	case JumpSLE:
		return "s<="
	}
	return "?"
}

func jumpMnemonic(ins Instruction) string {
	op := ins.JumpOpField()
	switch op {
	case JumpAlways:
		return fmt.Sprintf("goto %+d", ins.Offset)
	case JumpCall:
		return fmt.Sprintf("call %d", ins.Imm)
	case JumpExit:
		return "exit"
	}
	dst := ins.Dst.String()
	if ins.Class() == ClassJMP32 {
		dst = "w" + dst[1:]
	}
	if ins.SourceField() == SourceX {
		src := ins.Src.String()
		if ins.Class() == ClassJMP32 {
			src = "w" + src[1:]
		}
		return fmt.Sprintf("if %s %s %s goto %+d", dst, jumpSym(op), src, ins.Offset)
	}
	return fmt.Sprintf("if %s %s %d goto %+d", dst, jumpSym(op), ins.Imm, ins.Offset)
}

// Disassemble renders the whole program, one instruction per line, prefixed
// with its slot index the way the kernel verifier log does.
func Disassemble(p *Program) string {
	var b strings.Builder
	idx := p.SlotIndex()
	for i, ins := range p.Insns {
		fmt.Fprintf(&b, "%4d: %s\n", idx[i], Mnemonic(ins))
	}
	return b.String()
}
