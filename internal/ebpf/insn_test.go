package ebpf

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestClassPredicates(t *testing.T) {
	cases := []struct {
		ins                              Instruction
		wide, exit, call, atomic, branch bool
	}{
		{Mov64Imm(R1, 7), false, false, false, false, false},
		{LoadImm64(R3, 0xf0000000), true, false, false, false, false},
		{Exit(), false, true, false, false, false},
		{Call(1), false, false, true, false, false},
		{Atomic(SizeDW, AtomicAdd, R0, 16, R1), false, false, false, true, false},
		{JumpImm(JumpEq, R1, 0, 4), false, false, false, false, true},
		{Jump(3), false, false, false, false, false}, // uncond, not cond
	}
	for i, c := range cases {
		if got := c.ins.IsWide(); got != c.wide {
			t.Errorf("case %d IsWide = %v", i, got)
		}
		if got := c.ins.IsExit(); got != c.exit {
			t.Errorf("case %d IsExit = %v", i, got)
		}
		if got := c.ins.IsCall(); got != c.call {
			t.Errorf("case %d IsCall = %v", i, got)
		}
		if got := c.ins.IsAtomic(); got != c.atomic {
			t.Errorf("case %d IsAtomic = %v", i, got)
		}
		if got := c.ins.IsCondJump(); got != c.branch {
			t.Errorf("case %d IsCondJump = %v", i, got)
		}
	}
	if !Jump(1).IsUncondJump() || !Jump(1).Terminates() {
		t.Error("ja should be unconditional and terminate fallthrough")
	}
	if !Exit().Terminates() {
		t.Error("exit should terminate fallthrough")
	}
}

func TestSizeBytesRoundTrip(t *testing.T) {
	for _, n := range []int{1, 2, 4, 8} {
		s, ok := SizeForBytes(n)
		if !ok || s.Bytes() != n {
			t.Errorf("SizeForBytes(%d) = %v,%v", n, s, ok)
		}
	}
	if _, ok := SizeForBytes(3); ok {
		t.Error("SizeForBytes(3) should fail")
	}
}

func TestOpcodePacking(t *testing.T) {
	ins := ALU64Imm(ALULsh, R8, 32)
	if ins.Class() != ClassALU64 || ins.ALUOpField() != ALULsh || ins.SourceField() != SourceK {
		t.Fatalf("bad packing: %+v", ins)
	}
	ins = Jump32Reg(JumpLT, R1, R2, -4)
	if ins.Class() != ClassJMP32 || ins.JumpOpField() != JumpLT || ins.SourceField() != SourceX {
		t.Fatalf("bad packing: %+v", ins)
	}
	ld := LoadMem(SizeH, R1, R0, 0x24)
	if ld.Class() != ClassLDX || ld.SizeField() != SizeH || ld.ModeField() != ModeMEM {
		t.Fatalf("bad packing: %+v", ld)
	}
}

// randInsn generates a random valid instruction for property tests.
func randInsn(r *rand.Rand) Instruction {
	regs := []Register{R0, R1, R2, R3, R4, R5, R6, R7, R8, R9, R10}
	reg := func() Register { return regs[r.Intn(len(regs))] }
	off := int16(r.Intn(512) - 256)
	imm := int32(r.Int63())
	sizes := []Size{SizeB, SizeH, SizeW, SizeDW}
	alus := []ALUOp{ALUAdd, ALUSub, ALUMul, ALUDiv, ALUOr, ALUAnd, ALULsh, ALURsh, ALUMod, ALUXor, ALUMov, ALUArsh}
	jmps := []JumpOp{JumpEq, JumpGT, JumpGE, JumpSet, JumpNE, JumpSGT, JumpSGE, JumpLT, JumpLE, JumpSLT, JumpSLE}
	switch r.Intn(10) {
	case 0:
		return ALU64Reg(alus[r.Intn(len(alus))], reg(), reg())
	case 1:
		return ALU64Imm(alus[r.Intn(len(alus))], reg(), imm)
	case 2:
		return ALU32Imm(alus[r.Intn(len(alus))], reg(), imm)
	case 3:
		return LoadImm64(reg(), r.Int63())
	case 4:
		return LoadMem(sizes[r.Intn(4)], reg(), reg(), off)
	case 5:
		return StoreMem(sizes[r.Intn(4)], reg(), off, reg())
	case 6:
		return StoreImm(sizes[r.Intn(4)], reg(), off, imm)
	case 7:
		return JumpImm(jmps[r.Intn(len(jmps))], reg(), imm, off)
	case 8:
		return Atomic([]Size{SizeW, SizeDW}[r.Intn(2)], AtomicAdd, reg(), off, reg())
	default:
		return Call(int32(r.Intn(16)))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		r := rand.New(rand.NewSource(seed))
		count := int(n%64) + 1
		p := &Program{Name: "prop"}
		for i := 0; i < count; i++ {
			p.Insns = append(p.Insns, randInsn(r))
		}
		p.Insns = append(p.Insns, Exit())
		got, err := Decode(p.Encode())
		if err != nil {
			t.Logf("decode error: %v", err)
			return false
		}
		if len(got) != len(p.Insns) {
			return false
		}
		for i := range got {
			a, b := got[i], p.Insns[i]
			if a.Opcode != b.Opcode || a.Dst != b.Dst || a.Src != b.Src || a.Offset != b.Offset || a.Imm != b.Imm {
				return false
			}
			if a.IsWide() && a.Imm64 != b.Imm64 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, err := Decode(make([]byte, 7)); err == nil {
		t.Error("want error for non-multiple-of-8 input")
	}
	wide := LoadImm64(R1, 1)
	raw := (&Program{Insns: []Instruction{wide}}).Encode()
	if _, err := Decode(raw[:8]); err == nil {
		t.Error("want error for truncated lddw")
	}
}

func TestNIAndSlots(t *testing.T) {
	p := &Program{Insns: []Instruction{
		Mov64Imm(R0, 0),
		LoadImm64(R1, 0xdeadbeefcafe),
		Exit(),
	}}
	if got := p.NI(); got != 4 {
		t.Fatalf("NI = %d, want 4 (lddw counts twice)", got)
	}
	idx := p.SlotIndex()
	want := []int{0, 1, 3, 4}
	for i := range want {
		if idx[i] != want[i] {
			t.Fatalf("SlotIndex = %v, want %v", idx, want)
		}
	}
}

func TestBranchTargetAcrossWide(t *testing.T) {
	// if r1 == 0 goto exit; lddw r2; mov r0; exit
	p := &Program{Insns: []Instruction{
		JumpImm(JumpEq, R1, 0, 3), // slot 0, target slot 4
		LoadImm64(R2, 1),          // slots 1-2
		Mov64Imm(R0, 0),           // slot 3
		Exit(),                    // slot 4
	}}
	if got := p.BranchTarget(0); got != 3 {
		t.Fatalf("BranchTarget = %d, want element 3", got)
	}
}

func TestEditableDeleteFixesOffsets(t *testing.T) {
	p := &Program{Insns: []Instruction{
		JumpImm(JumpEq, R1, 0, 3), // → exit
		Mov64Imm(R2, 1),           // dead, will be deleted
		Mov64Imm(R3, 2),
		Mov64Imm(R0, 0),
		Exit(),
	}}
	e, err := MakeEditable(p)
	if err != nil {
		t.Fatal(err)
	}
	e.Delete(1)
	q, err := e.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if q.NI() != 4 {
		t.Fatalf("NI = %d, want 4", q.NI())
	}
	if got := q.BranchTarget(0); got != 3 {
		t.Fatalf("post-delete target = %d, want 3 (exit)", got)
	}
	if q.Insns[0].Offset != 2 {
		t.Fatalf("offset = %d, want 2", q.Insns[0].Offset)
	}
}

func TestEditableInsertBefore(t *testing.T) {
	p := &Program{Insns: []Instruction{
		JumpImm(JumpNE, R1, 0, 1),
		Mov64Imm(R0, 1),
		Exit(),
	}}
	e, err := MakeEditable(p)
	if err != nil {
		t.Fatal(err)
	}
	e.InsertBefore(1, Mov64Imm(R2, 9))
	q, err := e.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	// Branch skipped the mov; after insertion it must skip both.
	if got := q.BranchTarget(0); got != 3 {
		t.Fatalf("target = %d, want 3", got)
	}
}

func TestEditableDeleteAcrossWide(t *testing.T) {
	p := &Program{Insns: []Instruction{
		Mov64Imm(R4, 5),
		JumpImm(JumpEq, R1, 0, 4), // over lddw(2)+mov(1)+mov(1) → exit
		LoadImm64(R2, 0x1122334455),
		Mov64Imm(R3, 1),
		Mov64Imm(R0, 0),
		Exit(),
	}}
	e, err := MakeEditable(p)
	if err != nil {
		t.Fatal(err)
	}
	if e.Target[1] != 5 {
		t.Fatalf("target elem = %d, want 5", e.Target[1])
	}
	e.Delete(3)
	q, err := e.Finalize()
	if err != nil {
		t.Fatal(err)
	}
	if got := q.BranchTarget(1); got != 4 || !q.Insns[4].IsExit() {
		t.Fatalf("target = %d (%s)", got, Mnemonic(q.Insns[got]))
	}
}

func TestMnemonics(t *testing.T) {
	cases := []struct {
		ins  Instruction
		want string
	}{
		{Mov64Imm(R1, 1), "r1 = 1"},
		{Mov32Reg(R0, R0), "w0 = w0"},
		{LoadMem(SizeB, R2, R0, 0x25), "r2 = *(u8 *)(r0 + 37)"},
		{StoreImm(SizeW, R10, -4, 0), "*(u32 *)(r10 - 4) = 0"},
		{StoreMem(SizeDW, R10, -64, R1), "*(u64 *)(r10 - 64) = r1"},
		{Atomic(SizeDW, AtomicAdd, R0, 16, R1), "lock *(u64 *)(r0 + 16) += r1"},
		{ALU64Imm(ALULsh, R8, 32), "r8 <<= 32"},
		{ALU64Imm(ALURsh, R8, 60), "r8 >>= 60"},
		{JumpImm(JumpGT, R3, 54, 7), "if r3 > 54 goto +7"},
		{Call(1), "call 1"},
		{Exit(), "exit"},
		{LoadImm64(R3, 0xf0000000), "r3 = 0xf0000000 ll"},
	}
	for _, c := range cases {
		if got := Mnemonic(c.ins); got != c.want {
			t.Errorf("Mnemonic(%+v) = %q, want %q", c.ins, got, c.want)
		}
	}
}

func TestDisassembleSlotNumbers(t *testing.T) {
	p := &Program{Insns: []Instruction{LoadImm64(R1, 5), Mov64Imm(R0, 0), Exit()}}
	out := Disassemble(p)
	for _, want := range []string{"   0: r1 = 0x5 ll", "   2: r0 = 0", "   3: exit"} {
		if !strings.Contains(out, want) {
			t.Errorf("disassembly missing %q:\n%s", want, out)
		}
	}
}

func TestRegisterString(t *testing.T) {
	if R10.String() != "r10" || PseudoReg.String() != "r?" {
		t.Error("register String broken")
	}
	if !R10.Valid() || PseudoReg.Valid() {
		t.Error("register Valid broken")
	}
}
