// Package objfile defines the on-disk container the command-line tools
// exchange: a JSON envelope carrying a program's metadata, map specs, and
// hex-encoded instruction stream. merlinc writes it; merlin-objdump and
// merlin-verify read it.
package objfile

import (
	"encoding/hex"
	"encoding/json"
	"fmt"

	"merlin/internal/chaos"
	"merlin/internal/ebpf"
)

// File is the serialized form of one compiled program.
type File struct {
	Name  string         `json:"name"`
	Hook  string         `json:"hook"`
	MCPU  int            `json:"mcpu"`
	Maps  []ebpf.MapSpec `json:"maps,omitempty"`
	Insns string         `json:"insns"` // hex of the wire encoding
}

// hookNames maps between HookType and its serialized name.
var hookNames = map[string]ebpf.HookType{
	"xdp":           ebpf.HookXDP,
	"tracepoint":    ebpf.HookTracepoint,
	"kprobe":        ebpf.HookKprobe,
	"socket_filter": ebpf.HookSocketFilter,
}

// Marshal serializes a program.
func Marshal(p *ebpf.Program) ([]byte, error) {
	f := File{
		Name:  p.Name,
		Hook:  p.Hook.String(),
		MCPU:  p.MCPU,
		Maps:  p.Maps,
		Insns: hex.EncodeToString(p.Encode()),
	}
	return json.MarshalIndent(f, "", "  ")
}

// Unmarshal parses a serialized program.
func Unmarshal(data []byte) (*ebpf.Program, error) {
	var f File
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("objfile: %w", err)
	}
	hook, ok := hookNames[f.Hook]
	if !ok {
		return nil, fmt.Errorf("objfile: unknown hook %q", f.Hook)
	}
	raw, err := hex.DecodeString(f.Insns)
	if err != nil {
		return nil, fmt.Errorf("objfile: bad instruction hex: %w", err)
	}
	insns, err := ebpf.Decode(raw)
	if err != nil {
		return nil, err
	}
	return &ebpf.Program{Name: f.Name, Hook: hook, MCPU: f.MCPU, Maps: f.Maps, Insns: insns}, nil
}

// Write saves a program to path.
func Write(path string, p *ebpf.Program) error {
	return WriteFS(chaos.OS(), path, p)
}

// WriteFS saves a program to path through fs, so storage faults injected by a
// chaos plan surface exactly like real disk errors.
func WriteFS(fs chaos.FS, path string, p *ebpf.Program) error {
	data, err := Marshal(p)
	if err != nil {
		return err
	}
	return chaos.WriteFile(fs, path, append(data, '\n'), 0o644)
}

// Read loads a program from path.
func Read(path string) (*ebpf.Program, error) {
	return ReadFS(chaos.OS(), path)
}

// ReadFS loads a program from path through fs.
func ReadFS(fs chaos.FS, path string) (*ebpf.Program, error) {
	data, err := chaos.ReadFile(fs, path)
	if err != nil {
		return nil, err
	}
	return Unmarshal(data)
}
