package objfile

import (
	"errors"
	"path/filepath"
	"syscall"
	"testing"

	"merlin/internal/chaos"
	"merlin/internal/ebpf"
)

func sampleProg() *ebpf.Program {
	return &ebpf.Program{
		Name: "sample",
		Hook: ebpf.HookXDP,
		MCPU: 2,
		Insns: []ebpf.Instruction{
			ebpf.LoadMapPtr(ebpf.R1, 0),
			ebpf.LoadImm64(ebpf.R2, 0x1122334455667788),
			ebpf.Mov64Imm(ebpf.R0, 2),
			ebpf.Exit(),
		},
		Maps: []ebpf.MapSpec{{Name: "m", Kind: 1, KeySize: 4, ValueSize: 8, MaxEntries: 16}},
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	p := sampleProg()
	data, err := Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	q, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if q.Name != p.Name || q.Hook != p.Hook || q.MCPU != p.MCPU || q.NI() != p.NI() {
		t.Fatalf("metadata mismatch: %+v", q)
	}
	if len(q.Maps) != 1 || q.Maps[0] != p.Maps[0] {
		t.Fatalf("maps mismatch: %+v", q.Maps)
	}
	for i := range p.Insns {
		if ebpf.Mnemonic(q.Insns[i]) != ebpf.Mnemonic(p.Insns[i]) {
			t.Fatalf("insn %d mismatch", i)
		}
	}
	if !q.Insns[0].IsMapLoad() {
		t.Fatal("map pseudo load lost")
	}
}

func TestWriteRead(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.json")
	if err := Write(path, sampleProg()); err != nil {
		t.Fatal(err)
	}
	q, err := Read(path)
	if err != nil {
		t.Fatal(err)
	}
	if q.NI() != 6 {
		t.Fatalf("NI = %d", q.NI())
	}
}

// TestReadWriteFSFaults drives the FS-parameterized paths through a chaos
// plan: injected faults must surface as the errno a real disk would return,
// a torn write must not be reported as success, and the same calls succeed
// once the plan stops firing.
func TestReadWriteFSFaults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "p.json")

	torn := chaos.Wrap(chaos.OS(), chaos.NewSchedule(
		chaos.Step{Op: chaos.OpWrite, Fault: chaos.Torn},
	))
	if err := WriteFS(torn, path, sampleProg()); err == nil {
		t.Fatal("torn write reported success")
	}
	// The torn half-file must not parse as a program.
	if _, err := Read(path); err == nil {
		t.Fatal("half-written objfile decoded cleanly")
	}

	if err := Write(path, sampleProg()); err != nil {
		t.Fatal(err)
	}
	eio := chaos.Wrap(chaos.OS(), chaos.NewSchedule(
		chaos.Step{Op: chaos.OpRead, Fault: chaos.EIO},
	))
	if _, err := ReadFS(eio, path); !errors.Is(err, syscall.EIO) {
		t.Fatalf("injected read fault surfaced as %v, want EIO", err)
	}
	// A schedule is finite: the retry on the same wrapped FS goes through.
	q, err := ReadFS(eio, path)
	if err != nil {
		t.Fatalf("retry after fault: %v", err)
	}
	if q.NI() != 6 {
		t.Fatalf("NI after retry = %d", q.NI())
	}

	enospc := chaos.Wrap(chaos.OS(), chaos.NewSchedule(
		chaos.Step{Op: chaos.OpOpen, Fault: chaos.ENOSPC},
	))
	if err := WriteFS(enospc, path, sampleProg()); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("injected open fault surfaced as %v, want ENOSPC", err)
	}
}

func TestUnmarshalErrors(t *testing.T) {
	if _, err := Unmarshal([]byte("{")); err == nil {
		t.Error("bad json accepted")
	}
	if _, err := Unmarshal([]byte(`{"hook":"nope","insns":""}`)); err == nil {
		t.Error("bad hook accepted")
	}
	if _, err := Unmarshal([]byte(`{"hook":"xdp","insns":"zz"}`)); err == nil {
		t.Error("bad hex accepted")
	}
	if _, err := Unmarshal([]byte(`{"hook":"xdp","insns":"00"}`)); err == nil {
		t.Error("truncated insns accepted")
	}
}
