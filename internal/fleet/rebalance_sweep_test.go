package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"merlin/internal/journal"
)

// replicaSweepConfig is the deterministic replicated-fleet configuration: the
// same seed and batch sizes on every run, so the recording controller and the
// per-case world rebuilds drive byte-identical worker state. Jitter draws
// only stretch durations, never change which RPC goes where, so the live
// workers see the same call sequence on every run.
func replicaSweepConfig() Config {
	return Config{
		Seed: 11, TrafficBatch: 4, VNodes: 16, Replication: 2,
		RPCTimeout: time.Second, RetryBase: time.Millisecond,
		BreakerBase: 5 * time.Millisecond, CompactEvery: 10_000,
	}
}

// buildReplicaScenario replays the recorded replicated-fleet history against
// fresh in-process workers: two rollouts land placements in the snapshot, a
// third rollout and one completed bootstrap repair land placement records in
// the journal tail, and a gated repair (onto a target seeded with an
// incumbent) is mid-canary when the controller dies. Returns the transport,
// the controller, and the two killed replicas.
func buildReplicaScenario(t *testing.T, jl *journal.Log) (*LocalTransport, *Controller, string, string) {
	t.Helper()
	workers := []string{"w1", "w2", "w3", "w4"}
	lt := NewLocalTransport()
	for _, name := range workers {
		lt.AddWorker(name, testWorkerConfig())
	}
	c := New(replicaSweepConfig(), lt)
	if jl != nil {
		c.AttachJournal(jl)
	}
	for _, name := range workers {
		if err := c.Join(name, name); err != nil {
			t.Fatalf("join %s: %v", name, err)
		}
	}
	for slot, src := range map[string]string{"a": "pass:0", "b": "pass:8"} {
		if r := runRollout(t, c, slot, src); r.Phase != PhaseDone {
			t.Fatalf("scenario rollout %s = %+v", slot, r)
		}
	}
	c.Flush() // snapshot: workers + both catalogs + both placements

	// Tail material past the snapshot: a third slot's assignment, rollout and
	// installed records...
	if r := runRollout(t, c, "c", "pass:16"); r.Phase != PhaseDone {
		t.Fatalf("scenario rollout c = %+v", r)
	}

	// ...a completed bootstrap repair for slot b (new placement record)...
	victimB := c.Placements()["b"][0]
	lt.Kill(victimB)
	demoteToDown(t, c, "b", victimB)
	c.Tick()
	c.Tick()
	if reps := c.Placements()["b"]; containsStr(reps, victimB) {
		t.Fatalf("scenario: slot b not repaired before crash (placement %v)", reps)
	}

	// ...and a gated repair for slot a, mid-canary at the crash. The target
	// is seeded with a same-verdict incumbent so the repair must walk the
	// full deploy→canary→promote pipeline instead of bootstrapping.
	targetA := predictRepairTarget(t, c, "a")
	seedIncumbent(t, lt, targetA, "a", "pass:4")
	victimA := c.Placements()["a"][0]
	lt.Kill(victimA)
	demoteToDown(t, c, "a", victimA)
	c.Tick() // repair a: deploy staged a candidate on targetA
	c.Tick() // repair a: first canary feed
	c.mu.Lock()
	inflight := c.repairs["a"] != nil
	c.mu.Unlock()
	if !inflight {
		t.Fatal("scenario: slot a repair not in flight at the crash point")
	}
	return lt, c, victimA, victimB
}

// TestRebalanceJournalTruncationSweep is the crash sweep over placement
// records: record a replicated fleet that dies with one repair completed and
// another mid-canary, then for every byte-prefix of the controller journal,
// recover a fresh controller against an identical world and require it to
// converge — every slot fully re-replicated onto live workers, every replica
// actually serving the blessed version, no copy left on a worker the
// placement does not name.
func TestRebalanceJournalTruncationSweep(t *testing.T) {
	recDir := t.TempDir()
	jl, err := journal.OpenWith(recDir, journal.Options{SegmentBytes: 600})
	if err != nil {
		t.Fatal(err)
	}
	buildReplicaScenario(t, jl)
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	segs, err := journal.SegmentFiles(recDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("scenario produced %d segments, want a rotation to sweep across", len(segs))
	}
	snap, _ := os.ReadFile(filepath.Join(recDir, "snapshot.db"))
	if snap == nil {
		t.Fatal("scenario produced no snapshot")
	}

	const samples = 5
	caseNum := 0
	for k, seg := range segs {
		data, err := os.ReadFile(filepath.Join(recDir, seg))
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < samples; s++ {
			cut := int64(len(data)) * int64(s) / int64(samples-1)
			caseNum++
			t.Run(fmt.Sprintf("case-%02d-%s-cut%d", caseNum, seg, cut), func(t *testing.T) {
				caseDir := t.TempDir()
				if err := os.WriteFile(filepath.Join(caseDir, "snapshot.db"), snap, 0o644); err != nil {
					t.Fatal(err)
				}
				for _, prev := range segs[:k] {
					b, err := os.ReadFile(filepath.Join(recDir, prev))
					if err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(filepath.Join(caseDir, prev), b, 0o644); err != nil {
						t.Fatal(err)
					}
				}
				if err := os.WriteFile(filepath.Join(caseDir, seg), data[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				verifyRebalanceRecovery(t, caseDir)
			})
		}
	}
}

// verifyRebalanceRecovery reconstructs the crash-point world, recovers a
// controller from the journal prefix in dir, drives Ticks until the fleet
// settles, and audits full replication.
func verifyRebalanceRecovery(t *testing.T, dir string) {
	t.Helper()
	lt, _, victimA, victimB := buildReplicaScenario(t, nil)

	jl, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("open prefix journal: %v", err)
	}
	defer jl.Close()
	c := New(replicaSweepConfig(), lt)
	c.AttachJournal(jl)
	rs, err := c.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rs.Workers != 4 {
		t.Fatalf("recovered %d workers, want 4 (stats %+v)", rs.Workers, rs)
	}
	if rs.Placements < 2 {
		t.Fatalf("recovered %d placements, want the snapshot's 2 at least", rs.Placements)
	}

	// Drive to quiescence: probes re-admit the live workers, any recovered
	// rollout finishes, the rebalancer re-repairs whatever placement version
	// the prefix preserved. Breakers and repair steps are wall-clock paced,
	// so poll with a deadline rather than a fixed step count.
	deadline := time.Now().Add(10 * time.Second)
	for {
		c.Tick()
		for i := 0; i < 50; i++ {
			if done, err := c.Step(); err != nil || done {
				break
			}
		}
		if replicationConverged(c, victimA, victimB) || time.Now().After(deadline) {
			break
		}
		time.Sleep(2 * time.Millisecond)
	}

	// Audit 1: every recovered slot is fully replicated on live workers.
	pls := c.Placements()
	for slot, reps := range pls {
		if len(reps) != 2 {
			t.Fatalf("slot %s has %d replicas after recovery: %v", slot, len(reps), reps)
		}
		for _, w := range reps {
			if w == victimA || w == victimB {
				t.Fatalf("slot %s still placed on dead worker %s: %v", slot, w, reps)
			}
			if _, err := lt.Manager(w).StatusOf(slot); err != nil {
				t.Fatalf("replica %s of %s not serving: %v", w, slot, err)
			}
		}
	}

	// Audit 2: replicas agree on the program. Dead workers keep whatever
	// they had; live non-replicas may hold an undrained stale copy until
	// they next reconcile, but every placed copy must be the blessed one.
	for slot, reps := range pls {
		insns := map[uint64]bool{}
		for _, w := range reps {
			insns[liveInsns(t, lt, w, slot)] = true
		}
		if len(insns) != 1 {
			t.Fatalf("slot %s replicas diverge after recovery: %v on %v", slot, insns, reps)
		}
	}

	// Audit 3: traffic is whole — no slot drops packets.
	for slot := range pls {
		if rep := c.Traffic(slot, 32); rep.Dropped != 0 {
			t.Fatalf("slot %s dropped %d packets after recovery", slot, rep.Dropped)
		}
	}
}

// replicationConverged reports whether every placed slot has R live replicas
// and no repair is still in flight.
func replicationConverged(c *Controller, dead ...string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.repairs) > 0 || len(c.repairQ) > 0 {
		return false
	}
	if c.rollout != nil && !c.rollout.terminal() {
		return false
	}
	for _, slot := range c.placementSlotsLocked() {
		pl := c.placements[slot]
		if len(pl.Replicas) != c.repairWantLocked() {
			return false
		}
		if c.liveReplicasLocked(pl) != c.repairWantLocked() {
			return false
		}
		for _, rn := range pl.Replicas {
			if containsStr(dead, rn) {
				return false
			}
			if c.workers[rn].health != Healthy {
				return false
			}
		}
	}
	return true
}

// TestRebalanceRecoverResumesRepair is the direct (no-truncation) recovery
// path: the controller dies mid-repair, a successor recovers from the full
// journal and finishes re-replication — including the gated repair, which
// must still pay the canary gate on the incumbent-bearing target.
func TestRebalanceRecoverResumesRepair(t *testing.T) {
	dir := t.TempDir()
	jl, err := journal.OpenWith(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lt, _, victimA, victimB := buildReplicaScenario(t, jl)
	if err := jl.Close(); err != nil { // the controller dies here
		t.Fatal(err)
	}

	jl2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	c := New(replicaSweepConfig(), lt)
	c.AttachJournal(jl2)
	rs, err := c.Recover()
	if err != nil {
		t.Fatal(err)
	}
	// Repairs are deliberately not journaled: the successor recomputes
	// under-replication from the recovered placements and health.
	c.mu.Lock()
	recoveredRepairs := len(c.repairs) + len(c.repairQ)
	c.mu.Unlock()
	if recoveredRepairs != 0 {
		t.Fatalf("recovery resurrected %d repair tasks", recoveredRepairs)
	}
	if rs.Placements != 3 {
		t.Fatalf("recovered %d placements, want 3", rs.Placements)
	}

	deadline := time.Now().Add(10 * time.Second)
	for !replicationConverged(c, victimA, victimB) {
		if time.Now().After(deadline) {
			t.Fatalf("fleet never converged: placements %v workers %+v",
				c.Placements(), c.FleetStatus().Workers)
		}
		c.Tick()
		time.Sleep(2 * time.Millisecond)
	}
	// The resumed gated repair went through the gate: the incumbent-bearing
	// target of slot a is at gen >= 2 (staged over its seeded incumbent),
	// and a's placement no longer names the dead replica.
	repsA := c.Placements()["a"]
	if containsStr(repsA, victimA) {
		t.Fatalf("slot a still placed on dead %s: %v", victimA, repsA)
	}
	for _, w := range repsA {
		st, err := lt.Manager(w).StatusOf("a")
		if err != nil {
			t.Fatalf("replica %s of a: %v", w, err)
		}
		if st.LiveGeneration == 0 {
			t.Fatalf("replica %s of a has no live program", w)
		}
	}
}
