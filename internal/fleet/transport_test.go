package fleet

import (
	"bufio"
	"context"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"merlin/internal/chaos"
	"merlin/internal/lifecycle"
)

func TestTCPTransportRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				line, _ := bufio.NewReader(c).ReadString('\n')
				line = strings.TrimSpace(line)
				switch line {
				case "status":
					fmt.Fprintln(c, "slot=s stage=live live=gen2 ni=4 served=1 mirrored=0")
					fmt.Fprintln(c, "ok status")
				case "hang":
					time.Sleep(10 * time.Second)
				default:
					fmt.Fprintln(c, "err unknown")
				}
			}(conn)
		}
	}()

	tr := &TCP{}
	ctx := context.Background()
	lines, err := tr.RPC(ctx, ln.Addr().String(), "status")
	if err != nil {
		t.Fatal(err)
	}
	if len(lines) != 2 {
		t.Fatalf("lines = %v", lines)
	}
	if _, ok := ReplyOK(lines); !ok {
		t.Fatalf("expected ok terminator: %v", lines)
	}
	st, err := lifecycle.ParseSlotStatus(lines[0])
	if err != nil || st.LiveGeneration != 2 {
		t.Fatalf("status line did not parse: %+v %v", st, err)
	}

	lines, err = tr.RPC(ctx, ln.Addr().String(), "bogus")
	if err != nil {
		t.Fatal(err)
	}
	if errLine, ok := ReplyErr(lines); !ok || errLine != "err unknown" {
		t.Fatalf("err reply = %v", lines)
	}

	// A server that never answers must fail by the context deadline, not
	// block the control plane.
	short, cancel := context.WithTimeout(ctx, 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	if _, err := tr.RPC(short, ln.Addr().String(), "hang"); err == nil {
		t.Fatal("hang RPC succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline not enforced")
	}
}

func newChaosWorker(t *testing.T) (*LocalTransport, *LocalWorker) {
	t.Helper()
	lt := NewLocalTransport()
	w := lt.AddWorker("w1", testWorkerConfig())
	return lt, w
}

func deployGen(t *testing.T, lt *LocalTransport, name string) int {
	t.Helper()
	st, err := lt.Manager(name).StatusOf("s")
	if err != nil {
		return 0
	}
	if st.CandidateGeneration > 0 {
		return st.CandidateGeneration
	}
	return st.LiveGeneration
}

func TestChaosTransportFaults(t *testing.T) {
	ctx := context.Background()

	t.Run("drop has no side effect", func(t *testing.T) {
		lt, _ := newChaosWorker(t)
		ct := WithChaos(lt, chaos.NewNetSchedule(chaos.NetStep{Verb: "deploy", Fault: chaos.NetDrop}))
		if _, err := ct.RPC(ctx, "w1", "deploy s pass:0"); err == nil {
			t.Fatal("dropped RPC succeeded")
		}
		if g := deployGen(t, lt, "w1"); g != 0 {
			t.Fatalf("drop still deployed: gen=%d", g)
		}
		if ct.Stats().Faults[chaos.NetDrop] != 1 {
			t.Fatalf("stats = %+v", ct.Stats())
		}
	})

	t.Run("one-way loses the reply but lands the side effect", func(t *testing.T) {
		lt, _ := newChaosWorker(t)
		ct := WithChaos(lt, chaos.NewNetSchedule(chaos.NetStep{Verb: "deploy", Fault: chaos.NetOneWay}))
		if _, err := ct.RPC(ctx, "w1", "deploy s pass:0"); err == nil {
			t.Fatal("one-way RPC returned a reply")
		}
		if g := deployGen(t, lt, "w1"); g != 1 {
			t.Fatalf("one-way lost the request too: gen=%d", g)
		}
	})

	t.Run("dup executes twice", func(t *testing.T) {
		lt, _ := newChaosWorker(t)
		// First deploy cleanly (goes live), then a duplicated deploy: two
		// more builds, candidate ends at gen 3.
		if _, err := lt.RPC(ctx, "w1", "deploy s pass:0"); err != nil {
			t.Fatal(err)
		}
		ct := WithChaos(lt, chaos.NewNetSchedule(chaos.NetStep{Verb: "deploy", Fault: chaos.NetDup}))
		lines, err := ct.RPC(ctx, "w1", "deploy s pass:1")
		if err != nil {
			t.Fatal(err)
		}
		rep, ok := parseDeployReply(lines)
		if !ok || rep.candGen != 3 {
			t.Fatalf("dup deploy reply = %v (parsed %+v)", lines, rep)
		}
	})

	t.Run("delay succeeds slower", func(t *testing.T) {
		lt, _ := newChaosWorker(t)
		ct := WithChaos(lt, chaos.NewNetSchedule(chaos.NetStep{Verb: "deploy", Fault: chaos.NetDelay}))
		ct.Delay = 20 * time.Millisecond
		start := time.Now()
		if _, err := ct.RPC(ctx, "w1", "deploy s pass:0"); err != nil {
			t.Fatal(err)
		}
		if time.Since(start) < 20*time.Millisecond {
			t.Fatal("delay fault did not delay")
		}
	})

	t.Run("partition isolates one worker", func(t *testing.T) {
		lt := NewLocalTransport()
		lt.AddWorker("w1", lifecycle.Config{})
		lt.AddWorker("w2", lifecycle.Config{})
		part := chaos.NewPartition()
		part.Isolate("w2", chaos.NetOneWay)
		ct := WithChaos(lt, part)
		if _, err := ct.RPC(ctx, "w1", "status"); err != nil {
			t.Fatalf("w1 should be reachable: %v", err)
		}
		if _, err := ct.RPC(ctx, "w2", "status"); err == nil {
			t.Fatal("w2 should be partitioned")
		}
		part.Heal("w2")
		if _, err := ct.RPC(ctx, "w2", "status"); err != nil {
			t.Fatalf("healed partition still failing: %v", err)
		}
	})
}
