package fleet

import (
	"context"
	"strings"
	"testing"

	"merlin/internal/lifecycle"
	"merlin/internal/metrics"
)

// placementFleet spins a controller with replication enabled over n workers.
func placementFleet(t *testing.T, n int, cfg Config) (*Controller, *LocalTransport) {
	t.Helper()
	if cfg.Replication == 0 {
		cfg.Replication = 2
	}
	if cfg.Metrics == nil {
		cfg.Metrics = metrics.New()
	}
	return testFleet(t, n, cfg)
}

// demoteToDown drives traffic until the controller marks the (killed) worker
// down. Chunks owned by the dead replica fail over, feeding the health
// machine; the survivors absorb every packet, so nothing is dropped.
func demoteToDown(t *testing.T, c *Controller, slot, name string) {
	t.Helper()
	for i := 0; i < 50; i++ {
		if rep := c.Traffic(slot, 32); rep.Dropped != 0 {
			t.Fatalf("dropped %d packets while demoting %s", rep.Dropped, name)
		}
		if workerHealth(c.FleetStatus(), name) == Down {
			return
		}
	}
	t.Fatalf("%s never reached down: %+v", name, c.FleetStatus().Workers)
}

// seedIncumbent plants a live program on a worker outside the control plane,
// so a later repair onto it must stage against a real incumbent and pay the
// canary gate.
func seedIncumbent(t *testing.T, lt *LocalTransport, worker, slot, desc string) {
	t.Helper()
	src, err := ResolveTestSource(desc)
	if err != nil {
		t.Fatal(err)
	}
	if err := lt.Manager(worker).DeployWith(slot, src, lifecycle.DeployOptions{SourceDesc: desc}); err != nil {
		t.Fatalf("seed incumbent %s on %s: %v", desc, worker, err)
	}
}

// predictRepairTarget returns the worker the rebalancer would repair slot
// onto right now — the first eligible non-replica on the ring walk.
func predictRepairTarget(t *testing.T, c *Controller, slot string) string {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	pl := c.placements[slot]
	if pl == nil {
		t.Fatalf("slot %s has no placement", slot)
	}
	target := c.repairTargetLocked(slot, pl)
	if target == "" {
		t.Fatalf("no repair target for %s", slot)
	}
	return target
}

func TestPlacementScopesDeployToReplicas(t *testing.T) {
	c, lt := placementFleet(t, 4, Config{})
	if r := runRollout(t, c, "s", "pass:0"); r.Phase != PhaseDone {
		t.Fatalf("rollout = %+v", r)
	}
	reps := c.Placements()["s"]
	if len(reps) != 2 {
		t.Fatalf("placement = %v, want 2 replicas", reps)
	}
	for _, w := range []string{"w1", "w2", "w3", "w4"} {
		_, err := lt.Manager(w).StatusOf("s")
		if containsStr(reps, w) {
			if err != nil {
				t.Fatalf("replica %s does not hold the slot: %v", w, err)
			}
		} else if err == nil {
			t.Fatalf("non-replica %s holds the slot (placement %v)", w, reps)
		}
	}
	st := c.FleetStatus()
	if len(st.Placements) != 1 || st.Placements[0].Live != 2 || st.Placements[0].Ver != 1 {
		t.Fatalf("placement view = %+v", st.Placements)
	}
	var found bool
	for _, l := range st.Lines() {
		if strings.HasPrefix(l, "placement slot=s ver=1 live=2/2") {
			found = true
		}
	}
	if !found {
		t.Fatalf("no placement line in %v", st.Lines())
	}
}

func TestTrafficFailsOverToSurvivingReplica(t *testing.T) {
	c, lt := placementFleet(t, 4, Config{})
	if r := runRollout(t, c, "s", "pass:0"); r.Phase != PhaseDone {
		t.Fatalf("rollout = %+v", r)
	}
	reps := c.Placements()["s"]
	victim, survivor := reps[0], reps[1]
	lt.Kill(victim)

	// The dead replica is still in the routing pool until the health machine
	// demotes it; its chunks fail over to the surviving replica, not to a
	// non-replica, and nothing is dropped at any point.
	rep := c.Traffic("s", 128)
	if rep.Dropped != 0 || rep.Sent != 128 {
		t.Fatalf("fan-out with one dead replica = %+v", rep)
	}
	if c.met.failovers.Value() == 0 {
		t.Fatal("no failover counted though a replica was dead")
	}
	demoteToDown(t, c, "s", victim)

	// Down: its ring points are withdrawn, the survivor owns everything.
	if rep := c.Traffic("s", 64); rep.Dropped != 0 || rep.Rerouted != 0 {
		t.Fatalf("post-down fan-out = %+v", rep)
	}
	if st, err := lt.Manager(survivor).StatusOf("s"); err != nil || st.Served == 0 {
		t.Fatalf("survivor did not serve: %+v err=%v", st, err)
	}
}

func TestRepairBootstrapsOntoFreshWorkerAndDrainsRejoiner(t *testing.T) {
	c, lt := placementFleet(t, 4, Config{})
	if r := runRollout(t, c, "s", "pass:0"); r.Phase != PhaseDone {
		t.Fatalf("rollout = %+v", r)
	}
	reps := c.Placements()["s"]
	victim := reps[0]
	lt.Kill(victim)
	demoteToDown(t, c, "s", victim)

	// The fresh target has no incumbent, so the blessed version bootstraps
	// live in a single repair step.
	for i := 0; i < 10 && containsStr(c.Placements()["s"], victim); i++ {
		c.Tick()
	}
	after := c.Placements()["s"]
	if containsStr(after, victim) || len(after) != 2 {
		t.Fatalf("placement not repaired: %v (victim %s)", after, victim)
	}
	if c.met.repairsBootstrap.Value() != 1 {
		t.Fatalf("bootstrap repairs = %d, want 1", c.met.repairsBootstrap.Value())
	}
	for _, w := range after {
		if st, err := lt.Manager(w).StatusOf("s"); err != nil || st.LiveGeneration == 0 {
			t.Fatalf("replica %s not live after repair: %+v err=%v", w, st, err)
		}
	}
	if rep := c.Traffic("s", 64); rep.Dropped != 0 {
		t.Fatalf("dropped after repair: %+v", rep)
	}

	// The victim comes back with its stale copy intact; it is no longer a
	// replica, so reconcile drains the copy off it.
	lt.Restart(victim, false)
	if err := c.Join(victim, victim); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if _, err := lt.Manager(victim).StatusOf("s"); err == nil {
		t.Fatalf("stale copy on %s not drained", victim)
	}
	if c.met.drains.Value() == 0 {
		t.Fatal("drain not counted")
	}
	if got := c.Placements()["s"]; len(got) != 2 || containsStr(got, victim) {
		t.Fatalf("placement churned on rejoin: %v", got)
	}
}

func TestRepairPaysCanaryGateOnIncumbentTarget(t *testing.T) {
	c, lt := placementFleet(t, 3, Config{})
	if r := runRollout(t, c, "s", "pass:0"); r.Phase != PhaseDone {
		t.Fatalf("rollout = %+v", r)
	}
	target := predictRepairTarget(t, c, "s")
	// Same verdict family as the blessed pass:0, different padding: the gate
	// clears, but only after real shadow/canary mirroring.
	seedIncumbent(t, lt, target, "s", "pass:4")

	victim := c.Placements()["s"][0]
	lt.Kill(victim)
	demoteToDown(t, c, "s", victim)
	for i := 0; i < 20 && containsStr(c.Placements()["s"], victim); i++ {
		c.Tick()
	}
	after := c.Placements()["s"]
	if containsStr(after, victim) || !containsStr(after, target) {
		t.Fatalf("placement after gated repair = %v (victim %s target %s)", after, victim, target)
	}
	if c.met.repairsGated.Value() != 1 || c.met.repairsBootstrap.Value() != 0 {
		t.Fatalf("gated=%d bootstrap=%d, want 1/0",
			c.met.repairsGated.Value(), c.met.repairsBootstrap.Value())
	}
	// gen2 proves the repair staged over the seeded incumbent and promoted
	// through the gate rather than bootstrapping a fresh gen1.
	st, err := lt.Manager(target).StatusOf("s")
	if err != nil || st.LiveGeneration != 2 {
		t.Fatalf("target after gated repair = %+v err=%v", st, err)
	}
}

func TestRepairGateRefusalOpensBreaker(t *testing.T) {
	c, lt := placementFleet(t, 3, Config{})
	if r := runRollout(t, c, "s", "pass:0"); r.Phase != PhaseDone {
		t.Fatalf("rollout = %+v", r)
	}
	target := predictRepairTarget(t, c, "s")
	// A genuinely divergent incumbent: every repair attempt stages, mirrors,
	// diverges, and is rejected by the target's own gate. Never forced.
	seedIncumbent(t, lt, target, "s", "drop:0")

	victim := c.Placements()["s"][0]
	lt.Kill(victim)
	demoteToDown(t, c, "s", victim)
	for i := 0; i < 30 && c.met.repairBreakerOpens.Value() == 0; i++ {
		c.Tick()
	}
	if c.met.repairBreakerOpens.Value() == 0 {
		t.Fatalf("repair breaker never opened (failed=%d)", c.met.repairsFailed.Value())
	}
	if got := c.met.repairsFailed.Value(); got < 3 {
		t.Fatalf("abandoned repairs = %d, want >= 3 before the breaker opens", got)
	}
	if c.met.repairsGated.Value()+c.met.repairsBootstrap.Value() != 0 {
		t.Fatal("a repair completed against a divergent incumbent")
	}
	// The divergent program never went live and the slot still serves from
	// the survivor; under-replication is visible, not fatal.
	if st, err := lt.Manager(target).StatusOf("s"); err == nil && st.LiveGeneration > 1 {
		t.Fatalf("divergent target was promoted: %+v", st)
	}
	if rep := c.Traffic("s", 64); rep.Dropped != 0 {
		t.Fatalf("dropped while under-replicated: %+v", rep)
	}
	c.mu.Lock()
	under := int64(0)
	if pl := c.placements["s"]; c.liveReplicasLocked(pl) < c.repairWantLocked() {
		under = 1
	}
	c.mu.Unlock()
	if under != 1 {
		t.Fatal("slot not recognized as under-replicated")
	}
}

func TestLeaveReassignsPlacement(t *testing.T) {
	c, lt := placementFleet(t, 4, Config{})
	if err := c.Deploy("s", "pass:0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Leave("w1"); err == nil {
		t.Fatal("Leave allowed during an in-flight rollout")
	}
	if r := driveRollout(t, c); r.Phase != PhaseDone {
		t.Fatalf("rollout = %+v", r)
	}
	if err := c.Leave("nope"); err == nil {
		t.Fatal("Leave of an unknown worker succeeded")
	}

	departing := c.Placements()["s"][0]
	if err := c.Leave(departing); err != nil {
		t.Fatalf("leave: %v", err)
	}
	if containsStr(c.Workers(), departing) {
		t.Fatalf("%s still a member after Leave", departing)
	}
	if got := c.Placements()["s"]; len(got) != 1 || containsStr(got, departing) {
		t.Fatalf("placement after leave = %v", got)
	}
	for i := 0; i < 10 && len(c.Placements()["s"]) < 2; i++ {
		c.Tick()
	}
	after := c.Placements()["s"]
	if len(after) != 2 || containsStr(after, departing) {
		t.Fatalf("placement not re-replicated after leave: %v", after)
	}
	for _, w := range after {
		if _, err := lt.Manager(w).StatusOf("s"); err != nil {
			t.Fatalf("replica %s missing the slot: %v", w, err)
		}
	}
}

func TestAuthTokenGatesControlRPCs(t *testing.T) {
	lt := NewLocalTransport()
	for _, n := range []string{"w1", "w2"} {
		lt.AddWorker(n, testWorkerConfig())
		lt.SetToken(n, "hunter2")
	}
	c := New(Config{Seed: 42, TrafficBatch: 4, AuthToken: "hunter2",
		Replication: 2, Metrics: metrics.New()}, lt)
	for _, n := range []string{"w1", "w2"} {
		if err := c.Join(n, n); err != nil {
			t.Fatalf("join %s: %v", n, err)
		}
	}
	// The token-bearing controller drives a full rollout unimpeded.
	if r := runRollout(t, c, "s", "pass:0"); r.Phase != PhaseDone {
		t.Fatalf("authed rollout = %+v", r)
	}

	// Raw probes without (or with the wrong) token get the uniform refusal
	// and are counted on the worker.
	w := lt.get("w1")
	for _, line := range []string{"status", "auth wrong status", "auth hunter2", "auth hunter2 "} {
		lines, err := lt.RPC(context.Background(), "w1", line)
		if err != nil || len(lines) != 1 || lines[0] != "err unauthorized" {
			t.Fatalf("probe %q = %v err=%v, want uniform refusal", line, lines, err)
		}
	}
	w.mu.Lock()
	fails := w.reg.Counter("merlin_fleet_auth_failures_total", "").Value()
	w.mu.Unlock()
	if fails != 4 {
		t.Fatalf("auth failures = %d, want 4", fails)
	}

	// A tokenless listener tolerates an auth header (rolling upgrade) and
	// bare lines alike.
	lt.SetToken("w2", "")
	for _, line := range []string{"status", "auth whatever status"} {
		lines, err := lt.RPC(context.Background(), "w2", line)
		if err != nil || len(lines) == 0 || lines[len(lines)-1] != "ok status" {
			t.Fatalf("tokenless probe %q = %v err=%v", line, lines, err)
		}
	}
}

func TestAuthLineCheckAuthMatrix(t *testing.T) {
	if got := AuthLine("", "status"); got != "status" {
		t.Fatalf("AuthLine no token = %q", got)
	}
	if got := AuthLine("t0k", "status"); got != "auth t0k status" {
		t.Fatalf("AuthLine = %q", got)
	}
	cases := []struct {
		token, line string
		wantRest    string
		wantOK      bool
	}{
		{"", "status", "status", true},
		{"", "auth anything status", "status", true},
		{"", "auth onlytoken", "", false},
		{"tok", "auth tok deploy s pass:0", "deploy s pass:0", true},
		{"tok", "auth bad deploy s pass:0", "", false},
		{"tok", "deploy s pass:0", "", false},
		{"tok", "auth tok", "", false},
		{"tok", "", "", false},
	}
	for _, tc := range cases {
		rest, ok := CheckAuth(tc.token, tc.line)
		if rest != tc.wantRest || ok != tc.wantOK {
			t.Fatalf("CheckAuth(%q, %q) = (%q, %v), want (%q, %v)",
				tc.token, tc.line, rest, ok, tc.wantRest, tc.wantOK)
		}
	}
}

func TestCanaryWatermarkSkipsStatusPolls(t *testing.T) {
	// Long canary, tiny traffic batches: many judge steps where nothing
	// changes. The piggybacked event watermark lets the controller skip the
	// tick+status round-trips on those steps, falling back to a full poll
	// every StatusFallbackEvery skips.
	lt := NewLocalTransport()
	for _, n := range []string{"w1", "w2"} {
		lt.AddWorker(n, lifecycle.Config{ShadowRuns: 2, CanaryRuns: 40, CycleSlack: 1000})
	}
	c := New(Config{Seed: 42, TrafficBatch: 2, StatusFallbackEvery: 4,
		MaxCanarySteps: 200, Metrics: metrics.New()}, lt)
	for _, n := range []string{"w1", "w2"} {
		if err := c.Join(n, n); err != nil {
			t.Fatal(err)
		}
	}
	if r := runRollout(t, c, "s", "pass:0"); r.Phase != PhaseDone {
		t.Fatalf("bootstrap = %+v", r)
	}
	if r := runRollout(t, c, "s", "pass:8"); r.Phase != PhaseDone {
		t.Fatalf("upgrade = %+v", r)
	}
	skips, polls := c.met.statusSkips.Value(), c.met.statusPolls.Value()
	if skips == 0 {
		t.Fatalf("no status polls skipped (polls=%d)", polls)
	}
	// The fallback bound: at most StatusFallbackEvery skips per poll.
	if skips > polls*4 {
		t.Fatalf("skips=%d exceed the fallback bound (polls=%d)", skips, polls)
	}
	// And the optimization is real: with 42 gate runs per worker at batch 2,
	// a poll-every-step controller would issue ~21 polls per worker.
	if polls >= skips+polls/2 && skips < polls {
		t.Fatalf("watermark barely used: skips=%d polls=%d", skips, polls)
	}
	// Correctness did not regress: both workers converged on the new version.
	if got, want := liveInsns(t, lt, "w2", "s"), liveInsns(t, lt, "w1", "s"); got != want {
		t.Fatalf("fleet not uniform: %d vs %d", got, want)
	}
}

func TestLegacyModeUntouchedByPlacementMachinery(t *testing.T) {
	// Replication 0: no placements are created, traffic fans over everyone,
	// rebalance is a no-op. The placement subsystem must be invisible.
	c, lt := testFleet(t, 3, Config{Metrics: metrics.New()})
	if r := runRollout(t, c, "s", "pass:0"); r.Phase != PhaseDone {
		t.Fatalf("rollout = %+v", r)
	}
	c.Tick()
	if got := c.Placements(); len(got) != 0 {
		t.Fatalf("legacy mode created placements: %v", got)
	}
	for _, w := range []string{"w1", "w2", "w3"} {
		if _, err := lt.Manager(w).StatusOf("s"); err != nil {
			t.Fatalf("legacy worker %s lost the slot: %v", w, err)
		}
	}
	if n := c.met.repairsStarted.Value(); n != 0 {
		t.Fatalf("legacy mode started %d repairs", n)
	}
}
