package fleet

// Health is a worker's position in the controller's failure-detection state
// machine. Transitions are driven exclusively by RPC outcomes (transport
// failures, never application-level "err" replies) and by probe results:
//
//	healthy ──fail──▶ suspect ──fails ≥ DownAfter──▶ down
//	suspect ──success──▶ healthy
//	down ──probe success──▶ recovering ──reconciled──▶ healthy
//	recovering ──fail──▶ down
//
// Down workers are excluded from the routing ring (their slots re-route to
// the remaining workers) and sit behind an open circuit breaker: RPCs to
// them fail fast without touching the network until the breaker's cooldown
// expires, at which point a single probe is allowed through (half-open).
// Every probe failure doubles the cooldown up to BreakerMax, with
// deterministic seeded jitter so a fleet of controllers does not probe in
// lockstep.
type Health int

const (
	// Healthy: serving traffic, breaker closed.
	Healthy Health = iota
	// Suspect: at least one recent consecutive transport failure. Still
	// routed (the failure may be transient), but the next failures
	// escalate to down.
	Suspect
	// Down: the breaker is open; the worker receives no traffic and its
	// hash-ring points are withdrawn. Only cooldown-gated probes reach it.
	Down
	// Recovering: a probe succeeded; the worker answers RPCs again but is
	// not routed until the controller has reconciled its slots against the
	// fleet catalog (a rejoining worker may have restarted empty, or be
	// carrying a half-promoted program from a rollout that failed while it
	// was partitioned away).
	Recovering
)

func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	case Recovering:
		return "recovering"
	}
	return "unknown"
}

// healthNames enumerates the states for per-state gauges.
var healthNames = []Health{Healthy, Suspect, Down, Recovering}

// eligible reports whether a worker in this state receives routed traffic.
func (h Health) eligible() bool { return h == Healthy || h == Suspect }
