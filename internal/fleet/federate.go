// Superopt cache federation: the controller periodically pulls every
// worker's verdict-cache delta, merges them into one union (same
// content-addressed, budget-qualified keys as the caches themselves — a
// conflict means a corrupt cache and aborts the sync loudly), and pushes the
// merged cache back out, so one machine's enumerative search pays for every
// machine's build.
package fleet

import (
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"

	"merlin/internal/superopt"
)

// CacheSyncReport summarizes one federation round.
type CacheSyncReport struct {
	// Workers is how many workers the round addressed.
	Workers int
	// Pulled counts workers whose delta export was fetched and merged.
	Pulled int
	// Entries is the total verdict entries pulled this round.
	Entries int
	// Pushed counts workers that accepted the merged union.
	Pushed int
	// Skipped counts workers unreachable (or erroring) in either phase;
	// their watermark is untouched, so the next round self-heals.
	Skipped int
	// Union is the size of the controller's merged cache after the round.
	Union int
}

func (r CacheSyncReport) String() string {
	return fmt.Sprintf("workers=%d pulled=%d entries=%d union=%d pushed=%d skipped=%d",
		r.Workers, r.Pulled, r.Entries, r.Union, r.Pushed, r.Skipped)
}

// CacheSync runs one federation round: pull each worker's superopt verdict
// delta (per-worker watermarks keep repeat rounds incremental), merge into
// the controller-held union, then push the union to every worker. Unreachable
// workers are skipped and caught up next round. A verdict conflict — the
// same key with a different verdict, which can only mean a corrupt cache or
// proof — aborts the sync with a loud error naming the worker; nothing is
// silently overwritten. stepMu serializes the round against rollout steps
// and reconciles, like every other compound multi-RPC operation.
func (c *Controller) CacheSync() (CacheSyncReport, error) {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()
	if c.fedCache == nil {
		c.fedCache = superopt.NewMemCache()
		c.fedSeqs = map[string]uint64{}
	}
	var rep CacheSyncReport
	workers := c.Workers()
	rep.Workers = len(workers)
	if c.met != nil {
		c.met.cacheSyncs.Inc()
	}

	for _, name := range workers {
		since := c.fedSeqs[name]
		lines, err := c.rpc(name, fmt.Sprintf("cacheexport %d", since), true)
		if err != nil {
			rep.Skipped++
			if c.met != nil {
				c.met.cacheSkips.Inc()
			}
			continue
		}
		if _, isErr := ReplyErr(lines); isErr {
			// A worker without -superopt (or a malformed request) answers
			// err; it has nothing to federate. Skip, don't abort.
			rep.Skipped++
			if c.met != nil {
				c.met.cacheSkips.Inc()
			}
			continue
		}
		blob, seq, n, perr := parseCacheExport(lines)
		if perr != nil {
			rep.Skipped++
			if c.met != nil {
				c.met.cacheSkips.Inc()
			}
			continue
		}
		if _, err := c.fedCache.Merge(blob); err != nil {
			if c.met != nil {
				c.met.cacheConflicts.Inc()
			}
			return rep, fmt.Errorf("fleet: cache sync: merging worker %s: %w", name, err)
		}
		c.fedSeqs[name] = seq
		rep.Pulled++
		rep.Entries += n
		if c.met != nil {
			c.met.cachePulled.Add(uint64(n))
		}
	}

	rep.Union = c.fedCache.Len()
	if c.met != nil {
		c.met.cacheUnion.Set(int64(rep.Union))
	}
	blob, _, n, err := c.fedCache.Export(0)
	if err != nil {
		return rep, fmt.Errorf("fleet: cache sync: export union: %w", err)
	}
	push := "cachemerge " + base64.StdEncoding.EncodeToString(blob)
	for _, name := range workers {
		// The union merge is idempotent, so retrying reads is safe.
		lines, err := c.rpc(name, push, true)
		if err != nil {
			rep.Skipped++
			if c.met != nil {
				c.met.cacheSkips.Inc()
			}
			continue
		}
		if errLine, isErr := ReplyErr(lines); isErr {
			if strings.Contains(errLine, "conflict") {
				if c.met != nil {
					c.met.cacheConflicts.Inc()
				}
				return rep, fmt.Errorf("fleet: cache sync: worker %s rejected the union: %s", name, errLine)
			}
			rep.Skipped++
			if c.met != nil {
				c.met.cacheSkips.Inc()
			}
			continue
		}
		rep.Pushed++
		if c.met != nil {
			c.met.cachePushed.Add(uint64(n))
		}
	}
	return rep, nil
}

// parseCacheExport extracts the base64 blob and watermark from a cacheexport
// reply: a "cachedata <b64>" line followed by "ok cacheexport seq=N
// entries=M".
func parseCacheExport(lines []string) (blob []byte, seq uint64, entries int, err error) {
	var b64 string
	for _, l := range lines {
		if rest, ok := strings.CutPrefix(l, "cachedata "); ok {
			b64 = strings.TrimSpace(rest)
		}
	}
	if b64 == "" {
		return nil, 0, 0, fmt.Errorf("fleet: cacheexport reply missing cachedata line")
	}
	blob, err = base64.StdEncoding.DecodeString(b64)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("fleet: cacheexport blob: %w", err)
	}
	last, ok := ReplyOK(lines)
	if !ok {
		return nil, 0, 0, fmt.Errorf("fleet: cacheexport reply not ok")
	}
	for _, f := range strings.Fields(last) {
		if v, ok := strings.CutPrefix(f, "seq="); ok {
			seq, err = strconv.ParseUint(v, 10, 64)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("fleet: cacheexport seq: %w", err)
			}
		}
		if v, ok := strings.CutPrefix(f, "entries="); ok {
			entries, err = strconv.Atoi(v)
			if err != nil {
				return nil, 0, 0, fmt.Errorf("fleet: cacheexport entries: %w", err)
			}
		}
	}
	return blob, seq, entries, nil
}

// FederatedCacheSize reports the controller union's current size (0 before
// the first sync).
func (c *Controller) FederatedCacheSize() int {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()
	if c.fedCache == nil {
		return 0
	}
	return c.fedCache.Len()
}
