package fleet

import (
	"strings"
	"sync"
	"testing"
	"time"

	"merlin/internal/lifecycle"
	"merlin/internal/metrics"
	"merlin/internal/vm"
)

// testWorkerConfig is the lifecycle config for in-process test workers:
// short gates, and a wide-open cycle-slack gate so the deliberately padded
// pass:N test programs are not rejected as cycle regressions (the divergence
// gate, which the tests exercise, is verdict-based and unaffected).
func testWorkerConfig() lifecycle.Config {
	return lifecycle.Config{ShadowRuns: 2, CanaryRuns: 2, CycleSlack: 1000}
}

// testFleet spins a controller over n in-process workers named w1..wn.
func testFleet(t *testing.T, n int, cfg Config) (*Controller, *LocalTransport) {
	t.Helper()
	lt := NewLocalTransport()
	names := make([]string, 0, n)
	for i := 0; i < n; i++ {
		name := "w" + itoa(i+1)
		lt.AddWorker(name, testWorkerConfig())
		names = append(names, name)
	}
	if cfg.RPCTimeout == 0 {
		cfg.RPCTimeout = time.Second
	}
	if cfg.RetryBase == 0 {
		cfg.RetryBase = time.Millisecond
	}
	if cfg.BreakerBase == 0 {
		cfg.BreakerBase = 5 * time.Millisecond
	}
	if cfg.TrafficBatch == 0 {
		cfg.TrafficBatch = 4
	}
	if cfg.Seed == 0 {
		cfg.Seed = 42
	}
	c := New(cfg, lt)
	for _, name := range names {
		if err := c.Join(name, name); err != nil {
			t.Fatalf("join %s: %v", name, err)
		}
	}
	return c, lt
}

// runRollout deploys src and drives the rollout to a terminal phase.
func runRollout(t *testing.T, c *Controller, slot, src string) *Rollout {
	t.Helper()
	if err := c.Deploy(slot, src); err != nil {
		t.Fatalf("deploy %s: %v", src, err)
	}
	return driveRollout(t, c)
}

func driveRollout(t *testing.T, c *Controller) *Rollout {
	t.Helper()
	for i := 0; i < 200; i++ {
		done, err := c.Step()
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if done {
			return c.RolloutStatus()
		}
	}
	t.Fatalf("rollout never terminated: %+v", c.RolloutStatus())
	return nil
}

// liveInsns reports the instruction count of one served packet on the
// worker's live program — the observable that distinguishes fleet versions.
func liveInsns(t *testing.T, lt *LocalTransport, worker, slot string) uint64 {
	t.Helper()
	pkt := make([]byte, 64)
	rv, st, err := lt.Manager(worker).Serve(slot, vm.BuildXDPContext(len(pkt)), pkt)
	if err != nil {
		t.Fatalf("serve on %s: %v", worker, err)
	}
	if rv != 2 {
		t.Fatalf("worker %s serves verdict %d — a divergent program is live", worker, rv)
	}
	return st.Instructions
}

func TestJoinHeartbeatAndLateJoinerReconciles(t *testing.T) {
	c, lt := testFleet(t, 2, Config{})
	if r := runRollout(t, c, "s", "pass:0"); r.Phase != PhaseDone {
		t.Fatalf("bootstrap rollout = %+v", r)
	}
	if r := runRollout(t, c, "s", "pass:8"); r.Phase != PhaseDone {
		t.Fatalf("upgrade rollout = %+v", r)
	}

	// A re-announce from a routable worker is a no-op heartbeat.
	ev := len(c.Events())
	if err := c.Join("w1", "w1"); err != nil {
		t.Fatal(err)
	}
	if len(c.Events()) != ev {
		t.Fatalf("heartbeat emitted events: %v", c.Events()[ev:])
	}

	// A brand-new worker joining after the rollouts gets the catalog pushed
	// at it before it is routed.
	lt.AddWorker("w9", testWorkerConfig())
	if err := c.Join("w9", "w9"); err != nil {
		t.Fatalf("late join: %v", err)
	}
	want := liveInsns(t, lt, "w1", "s")
	if got := liveInsns(t, lt, "w9", "s"); got != want {
		t.Fatalf("late joiner serves %d insns, fleet serves %d", got, want)
	}
	st := c.FleetStatus()
	if st.Degraded {
		t.Fatalf("fleet degraded after clean join: %+v", st)
	}
	for _, w := range st.Workers {
		if w.Health != Healthy {
			t.Fatalf("worker %s = %s, want healthy", w.Name, w.Health)
		}
	}
}

func TestHealthEscalationBreakerAndRecovery(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	c, lt := testFleet(t, 2, Config{
		Now: clock.Now, DownAfter: 3, BreakerBase: 100 * time.Millisecond,
		BreakerMax: 800 * time.Millisecond, Metrics: metrics.New(),
	})
	if r := runRollout(t, c, "s", "pass:0"); r.Phase != PhaseDone {
		t.Fatalf("bootstrap = %+v", r)
	}

	lt.Kill("w2")
	// Transport failures escalate healthy → suspect → down.
	for i := 0; i < 3; i++ {
		if _, err := c.rpc("w2", "tick", false); err == nil {
			t.Fatal("rpc to killed worker succeeded")
		}
	}
	st := c.FleetStatus()
	if !st.Degraded {
		t.Fatalf("fleet not degraded with a down worker: %+v", st)
	}
	if h := workerHealth(st, "w2"); h != Down {
		t.Fatalf("w2 = %s, want down", h)
	}

	// While the breaker is open, RPCs fail fast without touching the net.
	fastBefore := c.met.breakerFast.Value()
	if _, err := c.rpc("w2", "tick", false); err == nil {
		t.Fatal("breaker let an RPC through")
	}
	if c.met.breakerFast.Value() != fastBefore+1 {
		t.Fatal("fast-fail not counted")
	}

	// Cooldown expiry lets one probe through; a failed probe doubles it.
	clock.Advance(200 * time.Millisecond)
	c.Tick()
	cool1 := breakerRemaining(c, "w2")
	if cool1 <= 100*time.Millisecond {
		t.Fatalf("cooldown did not grow after failed probe: %v", cool1)
	}

	// Worker returns; probe succeeds; reconcile re-admits it.
	lt.Restart("w2", true) // fresh state: the restart lost everything
	clock.Advance(2 * time.Second)
	c.Tick()
	st = c.FleetStatus()
	if h := workerHealth(st, "w2"); h != Healthy {
		t.Fatalf("w2 after recovery = %s (%+v)", h, st)
	}
	if st.Degraded {
		t.Fatal("fleet still degraded after recovery")
	}
	// Reconcile must have re-pushed the catalog onto the blank worker.
	if got, want := liveInsns(t, lt, "w2", "s"), liveInsns(t, lt, "w1", "s"); got != want {
		t.Fatalf("recovered worker serves %d insns, fleet serves %d", got, want)
	}
}

func TestTrafficReroutesAroundDeadWorker(t *testing.T) {
	c, lt := testFleet(t, 3, Config{Metrics: metrics.New()})
	if r := runRollout(t, c, "s", "pass:0"); r.Phase != PhaseDone {
		t.Fatalf("bootstrap = %+v", r)
	}
	if rep := c.Traffic("s", 64); rep.Dropped != 0 || rep.Sent != 64 {
		t.Fatalf("healthy fan-out = %+v", rep)
	}

	lt.Kill("w2")
	rep := c.Traffic("s", 128)
	if rep.Dropped != 0 {
		t.Fatalf("packets dropped with two healthy workers: %+v", rep)
	}
	if rep.Sent != 128 {
		t.Fatalf("sent = %d, want 128", rep.Sent)
	}
	if rep.Rerouted == 0 {
		t.Fatalf("no chunk rerouted around the dead worker: %+v", rep)
	}
	if !c.FleetStatus().Degraded {
		t.Fatal("fleet not marked degraded")
	}
	// Once w2 is marked down its ring points are withdrawn: follow-up
	// traffic routes cleanly with no failover hops at all.
	if rep := c.Traffic("s", 64); rep.Rerouted != 0 || rep.Dropped != 0 {
		t.Fatalf("post-down fan-out still rerouting: %+v", rep)
	}
}

func TestAggregatedMetricsCarryWorkerLabels(t *testing.T) {
	c, _ := testFleet(t, 2, Config{Metrics: metrics.New()})
	if r := runRollout(t, c, "s", "pass:0"); r.Phase != PhaseDone {
		t.Fatalf("bootstrap = %+v", r)
	}
	c.Traffic("s", 32)
	var out strings.Builder
	if err := c.WriteMetrics(&out); err != nil {
		t.Fatal(err)
	}
	text := out.String()
	for _, want := range []string{
		"merlin_fleet_workers{", "merlin_fleet_degraded 0",
		`worker="w1"`, `worker="w2"`,
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("aggregated metrics missing %q:\n%s", want, text)
		}
	}
}

func workerHealth(st Status, name string) Health {
	for _, w := range st.Workers {
		if w.Name == name {
			return w.Health
		}
	}
	return -1
}

func breakerRemaining(c *Controller, name string) time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	w := c.workers[name]
	return w.cooldown
}

type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeClock) Now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeClock) Advance(d time.Duration) {
	f.mu.Lock()
	f.t = f.t.Add(d)
	f.mu.Unlock()
}
