package fleet

import "fmt"

// EventKind classifies fleet-level events. They mirror the per-slot lifecycle
// events one level up: what happened to a worker or a rollout, not to a
// program stage.
type EventKind string

const (
	EventJoin           EventKind = "join"
	EventHealthChange   EventKind = "health"
	EventReconciled     EventKind = "reconciled"
	EventRolloutStarted EventKind = "rollout-started"
	EventRolloutDone    EventKind = "rollout-done"
	EventRolloutHalted  EventKind = "rollout-halted"
	EventRolloutFailed  EventKind = "rollout-failed"
	EventWorkerPromoted EventKind = "worker-promoted"
	EventWorkerRolled   EventKind = "worker-rolled-back"
	EventRecovered      EventKind = "recovered"
	EventLeave          EventKind = "leave"
	EventPlacement      EventKind = "placement"
	EventRepair         EventKind = "repair"
	EventDrained        EventKind = "drained"
)

// Event is one entry in the controller's bounded event ring.
type Event struct {
	Seq    int
	Kind   EventKind
	Worker string
	Slot   string
	Detail string
}

func (e Event) String() string {
	s := fmt.Sprintf("[%d] %s", e.Seq, e.Kind)
	if e.Worker != "" {
		s += " worker=" + e.Worker
	}
	if e.Slot != "" {
		s += " slot=" + e.Slot
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// eventLocked appends to the ring, dropping the oldest entry past MaxEvents.
func (c *Controller) eventLocked(ev Event) {
	c.eventSeq++
	ev.Seq = c.eventSeq
	c.events = append(c.events, ev)
	if max := c.cfg.MaxEvents; len(c.events) > max {
		copy(c.events, c.events[len(c.events)-max:])
		c.events = c.events[:max]
	}
}

// Events returns a copy of the controller's event ring, oldest first.
func (c *Controller) Events() []Event {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]Event, len(c.events))
	copy(out, c.events)
	return out
}
