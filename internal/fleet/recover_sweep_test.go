package fleet

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"merlin/internal/journal"
)

// sweepConfig is the deterministic controller configuration shared by the
// recording run and every replayed world: same seed, same batch sizes, so
// the workers end up byte-identical at the crash point every time.
func sweepConfig() Config {
	return Config{
		Seed: 7, TrafficBatch: 4, VNodes: 16,
		RPCTimeout: time.Second, RetryBase: time.Millisecond,
		BreakerBase: 5 * time.Millisecond, CompactEvery: 10_000,
	}
}

// buildScenario replays the recorded fleet history against fresh in-process
// workers: two completed rollouts (pass:0, then pass:8), a snapshot
// compaction, then a third rollout of pass:16 stepped exactly crashSteps
// times — mid-rollout, with w1 promoted and w2 carrying a staged candidate.
// jl, when non-nil, records the controller's journal; the world (the
// workers) is identical either way.
func buildScenario(t *testing.T, jl *journal.Log, crashSteps int) (*LocalTransport, *Controller) {
	t.Helper()
	lt := NewLocalTransport()
	for _, name := range []string{"w1", "w2", "w3"} {
		lt.AddWorker(name, testWorkerConfig())
	}
	c := New(sweepConfig(), lt)
	if jl != nil {
		c.AttachJournal(jl)
	}
	for _, name := range []string{"w1", "w2", "w3"} {
		if err := c.Join(name, name); err != nil {
			t.Fatalf("join %s: %v", name, err)
		}
	}
	for _, src := range []string{"pass:0", "pass:8"} {
		if r := runRollout(t, c, "s", src); r.Phase != PhaseDone {
			t.Fatalf("scenario rollout %s = %+v", src, r)
		}
	}
	c.Flush() // snapshot: workers + catalog gen2 + installed gen2
	if err := c.Deploy("s", "pass:16"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < crashSteps; i++ {
		if done, err := c.Step(); err != nil || done {
			t.Fatalf("scenario rollout finished early at step %d (done=%v err=%v)", i, done, err)
		}
	}
	return lt, c
}

// TestControllerJournalTruncationSweep is the crash sweep over the
// controller's own journal: record a fleet history that dies mid-rollout,
// then for every byte-prefix of the journal's segment stream, recover a
// fresh controller against an identical world and require it to converge —
// the rollout resumes or rolls back cleanly, and the fleet is never left
// half-promoted (every worker serving the same version, controller state
// matching the observed world).
func TestControllerJournalTruncationSweep(t *testing.T) {
	const crashSteps = 4

	// Recording run: small segments so the sweep crosses a rotation.
	recDir := t.TempDir()
	jl, err := journal.OpenWith(recDir, journal.Options{SegmentBytes: 600})
	if err != nil {
		t.Fatal(err)
	}
	ltRec, _ := buildScenario(t, jl, crashSteps)
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}
	// The two fleet versions in play, measured on the recorded world: w3
	// still serves the blessed pass:8, w1 was promoted to pass:16.
	oldInsns := liveInsns(t, ltRec, "w3", "s")
	newInsns := liveInsns(t, ltRec, "w1", "s")
	if oldInsns == newInsns {
		t.Fatalf("scenario versions indistinguishable: %d insns", oldInsns)
	}

	segs, err := journal.SegmentFiles(recDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("scenario produced %d segments, want a rotation to sweep across", len(segs))
	}
	snap, _ := os.ReadFile(filepath.Join(recDir, "snapshot.db"))
	if snap == nil {
		t.Fatal("scenario produced no snapshot")
	}

	const samples = 5
	caseNum := 0
	for k, seg := range segs {
		data, err := os.ReadFile(filepath.Join(recDir, seg))
		if err != nil {
			t.Fatal(err)
		}
		for s := 0; s < samples; s++ {
			cut := int64(len(data)) * int64(s) / int64(samples-1)
			caseNum++
			t.Run(fmt.Sprintf("case-%02d-%s-cut%d", caseNum, seg, cut), func(t *testing.T) {
				caseDir := t.TempDir()
				if err := os.WriteFile(filepath.Join(caseDir, "snapshot.db"), snap, 0o644); err != nil {
					t.Fatal(err)
				}
				for _, prev := range segs[:k] {
					b, err := os.ReadFile(filepath.Join(recDir, prev))
					if err != nil {
						t.Fatal(err)
					}
					if err := os.WriteFile(filepath.Join(caseDir, prev), b, 0o644); err != nil {
						t.Fatal(err)
					}
				}
				if err := os.WriteFile(filepath.Join(caseDir, seg), data[:cut], 0o644); err != nil {
					t.Fatal(err)
				}
				verifyFleetRecovery(t, caseDir)
			})
		}
	}
}

// verifyFleetRecovery reconstructs the crash-point world, recovers a
// controller from the journal prefix in dir, drives it to quiescence, and
// audits the never-half-promoted invariant.
func verifyFleetRecovery(t *testing.T, dir string) {
	t.Helper()
	// The world at the crash: identical workers, driven by a journal-less
	// controller that is then discarded (it "died").
	lt, _ := buildScenario(t, nil, 4)

	jl, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("open prefix journal: %v", err)
	}
	defer jl.Close()
	c := New(sweepConfig(), lt)
	c.AttachJournal(jl)
	rs, err := c.Recover()
	if err != nil {
		t.Fatalf("recover: %v", err)
	}
	if rs.Workers != 3 {
		t.Fatalf("recovered %d workers, want 3 (stats %+v)", rs.Workers, rs)
	}

	// Re-admit the workers, then drive whatever rollout was recovered to a
	// terminal phase, then reconcile once more for any stragglers.
	c.Tick()
	for i := 0; i < 100; i++ {
		done, err := c.Step()
		if err != nil {
			t.Fatalf("step: %v", err)
		}
		if done {
			break
		}
	}
	c.Tick()

	if r := c.RolloutStatus(); !r.terminal() {
		t.Fatalf("rollout did not reach a terminal phase: %+v", r)
	}

	// Audit 1: uniform fleet. Every worker serves verdict 2 (liveInsns
	// fails otherwise) with the same program size — all old or all new,
	// never a mix.
	insns := map[uint64][]string{}
	for _, w := range []string{"w1", "w2", "w3"} {
		insns[liveInsns(t, lt, w, "s")] = append(insns[liveInsns(t, lt, w, "s")], w)
	}
	if len(insns) != 1 {
		t.Fatalf("fleet half-promoted after recovery: %v", insns)
	}

	// Audit 2: the controller's recovered+reconciled state matches the
	// observed world — catalog generation agrees with installed records,
	// and installed records agree with each worker's actual live program.
	c.mu.Lock()
	defer c.mu.Unlock()
	cat := c.catalog["s"]
	if cat == nil {
		t.Fatal("catalog lost slot s")
	}
	for _, w := range []string{"w1", "w2", "w3"} {
		inst, ok := c.installed[w]["s"]
		if !ok {
			t.Fatalf("no installed record for %s", w)
		}
		if inst.FleetGen != cat.Gen {
			t.Fatalf("%s installed fleet gen %d, catalog gen %d", w, inst.FleetGen, cat.Gen)
		}
		st, err := lt.Manager(w).StatusOf("s")
		if err != nil {
			t.Fatalf("status of %s: %v", w, err)
		}
		if st.LiveGeneration != inst.LocalGen {
			t.Fatalf("%s live gen %d, controller believes %d", w, st.LiveGeneration, inst.LocalGen)
		}
	}
}

// TestControllerRecoverResumesRollout is the direct (no-truncation) recovery
// path: kill the controller mid-rollout, recover from its full journal, and
// the rollout finishes on the workers the dead controller left behind.
func TestControllerRecoverResumesRollout(t *testing.T) {
	dir := t.TempDir()
	jl, err := journal.OpenWith(dir, journal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	lt, c1 := buildScenario(t, jl, 4)
	mid := c1.RolloutStatus()
	if mid.terminal() || len(mid.Promoted) == 0 {
		t.Fatalf("scenario not mid-rollout: %+v", mid)
	}
	if err := jl.Close(); err != nil { // the controller "dies" here
		t.Fatal(err)
	}

	jl2, err := journal.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer jl2.Close()
	c2 := New(sweepConfig(), lt)
	c2.AttachJournal(jl2)
	rs, err := c2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.RolloutPhase == "" || rs.RolloutPhase == PhaseDone {
		t.Fatalf("recovered rollout phase = %q, want in-flight", rs.RolloutPhase)
	}
	c2.Tick()
	r := driveRollout(t, c2)
	if r.Phase != PhaseDone {
		t.Fatalf("resumed rollout = %+v", r)
	}
	want := liveInsns(t, lt, "w1", "s")
	for _, w := range []string{"w2", "w3"} {
		if got := liveInsns(t, lt, w, "s"); got != want {
			t.Fatalf("resumed fleet not uniform: %s=%d w1=%d", w, got, want)
		}
	}
	if st := c2.FleetStatus(); st.Catalog[0].Src != "pass:16" || st.Catalog[0].Gen != 3 {
		t.Fatalf("catalog after resume = %+v", st.Catalog)
	}
}
