package fleet

import (
	"encoding/json"
	"fmt"

	"merlin/internal/journal"
)

// The controller's durable state is five record kinds appended to a journal
// (latest-wins per key on replay; worker and installed records double as
// tombstones via Gone) plus a snapshot for compaction — the same shape as
// the per-worker lifecycle journal one level down. What is NOT persisted is
// health: a recovered controller assumes nothing about the world and
// re-earns its view by probing every journaled worker. Repair tasks are also
// not persisted: a recovered controller recomputes under-replication from
// the placement map and health, which is both simpler and self-correcting.
const (
	recWorker    = "worker"
	recCatalog   = "catalog"
	recInstalled = "installed"
	recRollout   = "rollout"
	recPlacement = "placement"
)

type workerRec struct {
	Name string `json:"name"`
	Addr string `json:"addr,omitempty"`
	Gone bool   `json:"gone,omitempty"` // tombstone: the worker left the fleet
}

type record struct {
	Kind      string        `json:"kind"`
	Worker    *workerRec    `json:"worker,omitempty"`
	Catalog   *CatalogSlot  `json:"catalog,omitempty"`
	Installed *installedRec `json:"installed,omitempty"`
	Rollout   *Rollout      `json:"rollout,omitempty"`
	Placement *Placement    `json:"placement,omitempty"`
}

type snapshot struct {
	Version    int            `json:"version"`
	Workers    []workerRec    `json:"workers"`
	Catalog    []CatalogSlot  `json:"catalog"`
	Installed  []installedRec `json:"installed"`
	Placements []Placement    `json:"placements,omitempty"`
	Rollout    *Rollout       `json:"rollout,omitempty"`
}

const snapshotVersion = 1

// AttachJournal makes the controller durable. Call before Recover and
// before any Join/Deploy traffic.
func (c *Controller) AttachJournal(j *journal.Log) {
	c.mu.Lock()
	c.jl = j
	c.mu.Unlock()
}

// journalLocked appends one record. Journal failures are counted, never
// fatal: the control plane keeps running in memory, exactly like a worker
// in journal-degraded mode.
func (c *Controller) journalLocked(rec record, sync bool) {
	if c.jl == nil {
		return
	}
	payload, err := json.Marshal(rec)
	if err == nil {
		err = c.jl.Append(payload, sync)
	}
	if err != nil {
		if c.met != nil {
			c.met.journalFailures.Inc()
		}
		return
	}
	if c.jAppends++; c.jAppends >= c.cfg.CompactEvery {
		c.jAppends = 0
		c.compactLocked()
	}
}

func (c *Controller) journalRolloutLocked(sync bool) {
	if c.rollout == nil {
		return
	}
	cp := c.rollout.clone()
	c.journalLocked(record{Kind: recRollout, Rollout: &cp}, sync)
}

func (c *Controller) snapshotLocked() snapshot {
	snap := snapshot{Version: snapshotVersion}
	for _, n := range c.workerNamesLocked(func(*worker) bool { return true }) {
		w := c.workers[n]
		snap.Workers = append(snap.Workers, workerRec{Name: n, Addr: w.addr})
	}
	for _, cat := range c.catalog {
		snap.Catalog = append(snap.Catalog, *cat)
	}
	for _, slots := range c.installed {
		for _, rec := range slots {
			snap.Installed = append(snap.Installed, rec)
		}
	}
	for _, n := range c.placementSlotsLocked() {
		pl := c.placements[n]
		cp := *pl
		cp.Replicas = append([]string(nil), pl.Replicas...)
		snap.Placements = append(snap.Placements, cp)
	}
	if c.rollout != nil {
		cp := c.rollout.clone()
		snap.Rollout = &cp
	}
	return snap
}

func (c *Controller) compactLocked() {
	payload, err := json.Marshal(c.snapshotLocked())
	if err == nil {
		err = c.jl.Compact(payload)
	}
	if err != nil && c.met != nil {
		c.met.journalFailures.Inc()
	}
}

// Flush forces a snapshot compaction (tests and shutdown paths).
func (c *Controller) Flush() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.jl != nil {
		c.compactLocked()
	}
}

// RecoverStats summarizes a journal recovery.
type RecoverStats struct {
	Workers    int
	Slots      int
	Installed  int
	Placements int
	Records    int
	// RolloutPhase is the recovered rollout's phase, "" when none.
	RolloutPhase string
}

// Recover rebuilds controller state from the attached journal: snapshot
// first, then the record tail, latest-wins per key. Every recovered worker
// starts Down with an already-expired breaker — the next Tick probes it
// immediately and reconcile re-admits it. An in-flight rollout resumes from
// its journaled phase; its idempotent steps re-discover any action whose
// acknowledgement died with the previous controller.
func (c *Controller) Recover() (RecoverStats, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var rs RecoverStats
	if c.jl == nil {
		return rs, nil
	}
	if payload, ok := c.jl.Snapshot(); ok {
		var snap snapshot
		if err := json.Unmarshal(payload, &snap); err != nil {
			return rs, fmt.Errorf("fleet: corrupt controller snapshot: %w", err)
		}
		c.applySnapshotLocked(snap)
	}
	err := c.jl.Replay(func(payload []byte) error {
		var rec record
		if uerr := json.Unmarshal(payload, &rec); uerr != nil {
			// A torn or foreign record: skip it, the journal layer already
			// dropped truncated tails.
			return nil
		}
		rs.Records++
		c.applyRecordLocked(rec)
		return nil
	})
	if err != nil {
		return rs, err
	}
	// Prune orphan placements: a crash between a Deploy's placement record
	// and its rollout/catalog records can leave a placement for a slot the
	// recovered controller has no blessed catalog entry for. The rebalancer
	// only repairs catalog slots, so an orphan would sit under-replicated
	// forever; drop it — the next Deploy of the slot re-assigns fresh.
	for _, slot := range c.placementSlotsLocked() {
		if c.catalog[slot] != nil {
			continue
		}
		if c.rollout != nil && !c.rollout.terminal() && c.rollout.Slot == slot {
			continue
		}
		delete(c.placements, slot)
		c.eventLocked(Event{Kind: EventPlacement, Slot: slot,
			Detail: "orphan placement (no catalog) dropped at recovery"})
	}
	rs.Workers = len(c.workers)
	rs.Slots = len(c.catalog)
	rs.Placements = len(c.placements)
	for _, slots := range c.installed {
		rs.Installed += len(slots)
	}
	if c.rollout != nil {
		rs.RolloutPhase = c.rollout.Phase
	}
	c.eventLocked(Event{Kind: EventRecovered, Detail: fmt.Sprintf(
		"%d workers, %d catalog slots, %d records, rollout=%s",
		rs.Workers, rs.Slots, rs.Records, orNone(rs.RolloutPhase))})
	c.gaugesLocked()
	return rs, nil
}

func orNone(s string) string {
	if s == "" {
		return "none"
	}
	return s
}

func (c *Controller) applySnapshotLocked(snap snapshot) {
	for i := range snap.Workers {
		c.applyRecordLocked(record{Kind: recWorker, Worker: &snap.Workers[i]})
	}
	for i := range snap.Catalog {
		c.applyRecordLocked(record{Kind: recCatalog, Catalog: &snap.Catalog[i]})
	}
	for i := range snap.Installed {
		c.applyRecordLocked(record{Kind: recInstalled, Installed: &snap.Installed[i]})
	}
	for i := range snap.Placements {
		c.applyRecordLocked(record{Kind: recPlacement, Placement: &snap.Placements[i]})
	}
	if snap.Rollout != nil {
		c.applyRecordLocked(record{Kind: recRollout, Rollout: snap.Rollout})
	}
}

func (c *Controller) applyRecordLocked(rec record) {
	switch rec.Kind {
	case recWorker:
		if rec.Worker == nil {
			return
		}
		if rec.Worker.Gone {
			delete(c.workers, rec.Worker.Name)
			delete(c.installed, rec.Worker.Name)
			for _, slot := range c.placementSlotsLocked() {
				pl := c.placements[slot]
				if containsStr(pl.Replicas, rec.Worker.Name) {
					pl.Replicas = withoutStr(pl.Replicas, rec.Worker.Name)
				}
			}
			return
		}
		w := c.workers[rec.Worker.Name]
		if w == nil {
			w = &worker{name: rec.Worker.Name}
			c.workers[rec.Worker.Name] = w
		}
		w.addr = rec.Worker.Addr
		// Guilty until probed: Down with an expired breaker means the next
		// Tick tries it immediately but nothing routes to it before then.
		w.health = Down
		w.cooldown = c.cfg.BreakerBase
	case recCatalog:
		if rec.Catalog == nil {
			return
		}
		cat := *rec.Catalog
		c.catalog[cat.Name] = &cat
	case recInstalled:
		if rec.Installed == nil {
			return
		}
		if rec.Installed.Gone {
			delete(c.installed[rec.Installed.Worker], rec.Installed.Slot)
			return
		}
		c.installedLocked(rec.Installed.Worker)[rec.Installed.Slot] = *rec.Installed
	case recPlacement:
		if rec.Placement == nil {
			return
		}
		if rec.Placement.Gone {
			delete(c.placements, rec.Placement.Slot)
			return
		}
		cp := *rec.Placement
		cp.Replicas = append([]string(nil), rec.Placement.Replicas...)
		c.placements[cp.Slot] = &cp
	case recRollout:
		if rec.Rollout == nil {
			return
		}
		cp := rec.Rollout.clone()
		if cp.CandGen == nil {
			cp.CandGen = map[string]int{}
		}
		if cp.PrevLive == nil {
			cp.PrevLive = map[string]int{}
		}
		c.rollout = &cp
	}
}
