package fleet

import (
	"errors"
	"fmt"

	"merlin/internal/lifecycle"
)

// Rollout phases. Forward progress is deploy → canary → promote per worker;
// any gate failure pivots the whole rollout into rollback, which unwinds the
// already-promoted workers in reverse order. done / failed are terminal.
const (
	PhaseDeploy   = "deploy"
	PhaseCanary   = "canary"
	PhasePromote  = "promote"
	PhaseRollback = "rollback"
	PhaseDone     = "done"
	PhaseFailed   = "failed"
)

// Rollout is the journaled state of one fleet-wide rolling deploy. Every
// field is exported for JSON round-tripping through the controller journal;
// each Step() performs at most one worker action and journals the resulting
// state, so a controller killed at any point resumes exactly one action deep.
// The phases are idempotent against replayed or half-delivered RPCs: a
// re-deploy replaces the candidate, and promote ambiguity (reply lost to a
// partition) is resolved by reading the worker's status instead of guessing.
type Rollout struct {
	Slot string `json:"slot"`
	Src  string `json:"src"`
	// Gen is the fleet generation this rollout installs; the catalog only
	// adopts it when every worker promoted.
	Gen   int      `json:"gen"`
	Order []string `json:"order"` // workers in deploy order
	Idx   int      `json:"idx"`   // current worker index
	Phase string   `json:"phase"`
	// Promoted lists workers already running Gen, in promotion order.
	Promoted []string `json:"promoted,omitempty"`
	// CandGen / PrevLive track, per worker, the candidate generation the
	// deploy staged and the live generation before it — the two anchors
	// that disambiguate "promoted during a partition" from "rejected by
	// the divergence gate" when reading status.
	CandGen  map[string]int `json:"candGen,omitempty"`
	PrevLive map[string]int `json:"prevLive,omitempty"`
	// Canary counts canary-feed steps spent on the current worker; Skips
	// counts consecutive status polls skipped because the worker's event
	// watermark was unchanged (see stepCanary).
	Canary int `json:"canary"`
	Skips  int `json:"skips,omitempty"`
	// Rollback bookkeeping: Aborted records that the in-flight candidate on
	// the current worker was torn down; RbIdx indexes Promoted from the
	// back; Skipped lists workers that were unreachable during rollback and
	// are left for reconcile to restore when they rejoin.
	Aborted bool     `json:"aborted,omitempty"`
	RbIdx   int      `json:"rbIdx,omitempty"`
	Skipped []string `json:"skipped,omitempty"`
	Reason  string   `json:"reason,omitempty"`
}

func (r *Rollout) terminal() bool {
	return r == nil || r.Phase == PhaseDone || r.Phase == PhaseFailed
}

func (r *Rollout) clone() Rollout {
	cp := *r
	cp.Order = append([]string(nil), r.Order...)
	cp.Promoted = append([]string(nil), r.Promoted...)
	cp.Skipped = append([]string(nil), r.Skipped...)
	cp.CandGen = map[string]int{}
	cp.PrevLive = map[string]int{}
	for k, v := range r.CandGen {
		cp.CandGen[k] = v
	}
	for k, v := range r.PrevLive {
		cp.PrevLive[k] = v
	}
	return cp
}

// Deploy starts a fleet-wide rolling deploy of src into slot across every
// currently-routable worker — or, with placement enabled, across the slot's
// routable replicas (assigning the placement first for a new slot). It fails
// if a rollout is already in flight or no worker is routable; the actual
// work happens one action per Step.
func (c *Controller) Deploy(slot, src string) error {
	if slot == "" || src == "" {
		return errors.New("fleet: deploy needs a slot and a source")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rollout != nil && !c.rollout.terminal() {
		return fmt.Errorf("fleet: rollout of %s already in flight (phase %s)",
			c.rollout.Slot, c.rollout.Phase)
	}
	order := c.workerNamesLocked(func(w *worker) bool { return w.health.eligible() })
	if len(order) == 0 {
		return errors.New("fleet: no routable workers to deploy to")
	}
	if c.cfg.Replication > 0 {
		pl := c.placements[slot]
		if pl == nil {
			pl = c.assignPlacementLocked(slot)
		}
		order = order[:0]
		for _, rn := range pl.Replicas {
			if w := c.workers[rn]; w != nil && w.health.eligible() {
				order = append(order, rn)
			}
		}
		if len(order) == 0 {
			return fmt.Errorf("fleet: no routable replica of %s to deploy to", slot)
		}
		// The rollout owns the slot now; any repair racing it is stale.
		c.cancelRepairsForSlotLocked(slot, "new rollout owns the slot")
	}
	gen := 1
	if cat := c.catalog[slot]; cat != nil {
		gen = cat.Gen + 1
	}
	c.rollout = &Rollout{
		Slot: slot, Src: src, Gen: gen, Order: order, Phase: PhaseDeploy,
		CandGen: map[string]int{}, PrevLive: map[string]int{},
	}
	c.journalRolloutLocked(true)
	if c.met != nil {
		c.met.rolloutsStarted.Inc()
	}
	c.eventLocked(Event{Kind: EventRolloutStarted, Slot: slot,
		Detail: fmt.Sprintf("gen%d %q across %d workers", gen, src, len(order))})
	return nil
}

// Step advances the in-flight rollout by at most one worker action and
// journals the result. It returns true when no rollout is in flight or the
// rollout reached a terminal phase. A transport failure makes no forward
// decision — the same action retries next Step, unless the worker has gone
// down, which halts the rollout into rollback.
func (c *Controller) Step() (bool, error) {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()

	c.mu.Lock()
	r := c.rollout
	if r.terminal() {
		c.mu.Unlock()
		return true, nil
	}
	phase := r.Phase
	c.mu.Unlock()

	switch phase {
	case PhaseDeploy:
		c.stepDeploy(r)
	case PhaseCanary:
		c.stepCanary(r)
	case PhasePromote:
		c.stepPromote(r)
	case PhaseRollback:
		c.stepRollback(r)
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.journalRolloutLocked(true)
	return c.rollout.terminal(), nil
}

// currentWorker returns the rollout's current worker and whether it is
// still routable, halting into rollback when it is not.
func (c *Controller) currentWorker(r *Rollout) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if r.Idx >= len(r.Order) {
		c.finishLocked(r)
		return "", false
	}
	name := r.Order[r.Idx]
	w := c.workers[name]
	if w == nil || w.health == Down {
		c.haltLocked(r, fmt.Sprintf("worker %s is down", name))
		return "", false
	}
	return name, true
}

func (c *Controller) stepDeploy(r *Rollout) {
	name, ok := c.currentWorker(r)
	if !ok {
		return
	}
	lines, err := c.rpc(name, "deploy "+r.Slot+" "+r.Src, false)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		return // health machine recorded it; retry or halt next Step
	}
	rep, ok := parseDeployReply(lines)
	if !ok {
		c.haltLocked(r, fmt.Sprintf("deploy on %s: %s", name, lastLine(lines)))
		return
	}
	if rep.candGen == 0 {
		if c.catalog[r.Slot] != nil {
			// The fleet has a blessed incumbent for this slot, but the deploy
			// went live with no candidate staged: the worker lost its state
			// (restarted empty mid-rollout) and the new version switched in
			// without paying the canary gate. An ungated switch never counts
			// as a promotion — halt the rollout, and park the worker in
			// Recovering so reconcile pushes the blessed version back over
			// the ungated one once the rollback settles.
			if w := c.workers[name]; w != nil && w.health != Down {
				c.setHealthLocked(w, Recovering, "ungated live switch during rollout")
			}
			c.haltLocked(r, fmt.Sprintf("ungated live switch on %s (incumbent lost)", name))
			return
		}
		// Fresh slot fleet-wide: the bootstrap deploy goes live immediately
		// (no incumbent anywhere to mirror against), which is a promotion in
		// fleet terms.
		c.markPromotedLocked(r, name, rep.liveGen)
		return
	}
	r.CandGen[name] = rep.candGen
	r.PrevLive[name] = rep.liveGen
	r.Phase = PhaseCanary
	r.Canary = 0
	r.Skips = 0
	// Force the first canary judge to poll: the deploy changed slot state.
	delete(c.eseqs, eseqKey(name, r.Slot))
}

// eseqKey indexes the per-(worker, slot) event watermark map.
func eseqKey(worker, slot string) string {
	return worker + "/" + slot
}

// stepCanary feeds the current worker's canary one batch of traffic, ticks
// its watchdog, and reads the verdict from status. The worker's own canary
// state machine is the gate — the controller only interprets it.
//
// The status poll is skipped when the traffic reply's piggybacked event
// watermark (eseq) matches the last one seen: every transition the judge
// cares about — stage advance, clearance, rejection, quarantine — emits a
// slot event, so an unchanged watermark means an unchanged verdict. The
// watermark is trusted at most StatusFallbackEvery times in a row; then a
// full poll runs anyway (and pre-watermark workers, whose replies carry no
// eseq, are always polled).
func (c *Controller) stepCanary(r *Rollout) {
	name, ok := c.currentWorker(r)
	if !ok {
		return
	}
	c.mu.Lock()
	batch := c.cfg.TrafficBatch
	c.mu.Unlock()
	lines, err := c.rpc(name, fmt.Sprintf("traffic %s %d", r.Slot, batch), false)
	if err != nil {
		return
	}
	if seq, ok := parseEseq(lines); ok {
		c.mu.Lock()
		last, seen := c.eseqs[eseqKey(name, r.Slot)]
		if seen && seq == last && r.Skips < c.cfg.StatusFallbackEvery {
			r.Skips++
			if c.met != nil {
				c.met.statusSkips.Inc()
			}
			// The stall guard still advances: a candidate that never clears
			// emits no events, and must still time out.
			if r.Canary++; r.Canary > c.cfg.MaxCanarySteps {
				c.haltLocked(r, fmt.Sprintf("canary stalled on %s after %d steps",
					name, c.cfg.MaxCanarySteps))
			}
			c.mu.Unlock()
			return
		}
		c.eseqs[eseqKey(name, r.Slot)] = seq
		c.mu.Unlock()
	}
	_, _ = c.rpc(name, "tick", false)
	c.judgeCandidate(r, name, true)
}

// judgeCandidate reads the worker's status and advances the rollout based on
// what actually happened to the candidate. Shared by the canary and promote
// phases — after a lost promote reply this is what discovers the truth.
func (c *Controller) judgeCandidate(r *Rollout, name string, inCanary bool) {
	if c.met != nil {
		c.met.statusPolls.Inc()
	}
	lines, err := c.rpc(name, "status", true)
	if err != nil {
		return
	}
	var st lifecycle.SlotStatus
	found := false
	for _, l := range lines {
		if s, perr := lifecycle.ParseSlotStatus(l); perr == nil && s.Slot == r.Slot {
			st, found = s, true
			break
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if found {
		// A full poll refreshes the watermark (the tick between traffic and
		// status may itself have emitted events) and re-arms the skip budget.
		c.eseqs[eseqKey(name, r.Slot)] = st.EventSeq
		r.Skips = 0
	}
	switch {
	case !found:
		c.haltLocked(r, fmt.Sprintf("slot %s vanished on %s", r.Slot, name))
	case st.Stage == lifecycle.StageQuarantined:
		c.haltLocked(r, fmt.Sprintf("candidate quarantined on %s", name))
	case st.CandidateGeneration == 0 && st.LiveGeneration >= r.CandGen[name]:
		// Candidate gone and the live generation reached (or passed) it:
		// an earlier promote landed but its reply was lost to a partition.
		c.markPromotedLocked(r, name, st.LiveGeneration)
	case st.CandidateGeneration == 0:
		// Candidate gone, live unchanged: the worker's divergence gate
		// rejected it. One node's verdict halts the whole fleet.
		c.haltLocked(r, fmt.Sprintf("candidate rejected by %s's gate", name))
	case st.CandidateGeneration != r.CandGen[name]:
		// A duplicated deploy staged a newer candidate; adopt it.
		r.CandGen[name] = st.CandidateGeneration
	case st.Cleared:
		r.Phase = PhasePromote
	default:
		if inCanary {
			if r.Canary++; r.Canary > c.cfg.MaxCanarySteps {
				c.haltLocked(r, fmt.Sprintf("canary stalled on %s after %d steps",
					name, c.cfg.MaxCanarySteps))
			}
		}
	}
}

func (c *Controller) stepPromote(r *Rollout) {
	name, ok := c.currentWorker(r)
	if !ok {
		return
	}
	lines, err := c.rpc(name, "promote "+r.Slot, false)
	if err != nil {
		// The promote may or may not have landed; the next Step re-enters
		// this phase and judgeCandidate resolves it from status.
		c.judgeCandidate(r, name, false)
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if last, ok := ReplyOK(lines); ok {
		c.markPromotedLocked(r, name, parseLiveGen(last))
		return
	}
	// "err ... has not cleared canary": the candidate regressed between our
	// status read and the promote (a mirrored run diverged or a quarantine
	// hit). Fall back to the canary loop to re-judge it.
	r.Phase = PhaseCanary
}

// markPromotedLocked records worker name as running r.Gen and moves the
// rollout to the next worker (or completion).
func (c *Controller) markPromotedLocked(r *Rollout, name string, liveGen int) {
	c.setInstalledLocked(name, r.Slot, r.Gen, liveGen, true)
	r.Promoted = append(r.Promoted, name)
	c.eventLocked(Event{Kind: EventWorkerPromoted, Worker: name, Slot: r.Slot,
		Detail: fmt.Sprintf("fleet gen%d live=gen%d (%d/%d)",
			r.Gen, liveGen, len(r.Promoted), len(r.Order))})
	r.Idx++
	r.Canary = 0
	if r.Idx >= len(r.Order) {
		c.finishLocked(r)
	} else {
		r.Phase = PhaseDeploy
	}
}

// finishLocked completes the rollout: the catalog adopts the new version,
// making it the generation reconcile defends from now on.
func (c *Controller) finishLocked(r *Rollout) {
	r.Phase = PhaseDone
	cat := &CatalogSlot{Name: r.Slot, Src: r.Src, Gen: r.Gen}
	c.catalog[r.Slot] = cat
	c.journalLocked(record{Kind: recCatalog, Catalog: cat}, true)
	if c.met != nil {
		c.met.rolloutsCompleted.Inc()
	}
	c.eventLocked(Event{Kind: EventRolloutDone, Slot: r.Slot,
		Detail: fmt.Sprintf("gen%d live on %d workers", r.Gen, len(r.Promoted))})
}

// haltLocked pivots the rollout into rollback. The catalog was never
// updated, so even workers we cannot reach right now converge back to the
// old version through reconcile when they reappear.
func (c *Controller) haltLocked(r *Rollout, reason string) {
	if r.Phase == PhaseRollback {
		return
	}
	r.Phase = PhaseRollback
	r.Reason = reason
	r.Aborted = false
	r.RbIdx = 0
	c.eventLocked(Event{Kind: EventRolloutHalted, Slot: r.Slot, Detail: reason})
}

func (c *Controller) stepRollback(r *Rollout) {
	// First unwind action: tear down the in-flight candidate on the worker
	// the rollout was parked on, so it cannot clear canary and self-promote
	// state later. Best-effort — a dead worker's candidate dies with it.
	if !r.Aborted {
		c.mu.Lock()
		var name string
		if r.Idx < len(r.Order) {
			name = r.Order[r.Idx]
		}
		staged := name != "" && r.CandGen[name] != 0
		r.Aborted = true
		c.mu.Unlock()
		if staged {
			_, _ = c.rpc(name, "abort "+r.Slot, false)
			return
		}
	}

	c.mu.Lock()
	if r.RbIdx >= len(r.Promoted) {
		r.Phase = PhaseFailed
		if c.catalog[r.Slot] == nil {
			// A failed bootstrap rollout: the slot was never blessed, so its
			// placement points at nothing the fleet defends. Withdraw it — the
			// next Deploy re-assigns fresh against then-current membership.
			c.dropPlacementLocked(r.Slot, "bootstrap rollout failed")
		}
		if c.met != nil {
			c.met.rolloutsFailed.Inc()
		}
		c.eventLocked(Event{Kind: EventRolloutFailed, Slot: r.Slot,
			Detail: fmt.Sprintf("%s; rolled back %d workers, %d left to reconcile",
				r.Reason, len(r.Promoted)-len(r.Skipped), len(r.Skipped))})
		c.mu.Unlock()
		return
	}
	name := r.Promoted[len(r.Promoted)-1-r.RbIdx]
	w := c.workers[name]
	oldGen := 0
	if cat := c.catalog[r.Slot]; cat != nil {
		oldGen = cat.Gen
	}
	if w == nil || w.health == Down {
		// Unreachable: leave it to reconcile. Its installed record still
		// says r.Gen, which no longer matches the catalog, so the moment it
		// rejoins the old version is pushed back onto it.
		r.Skipped = append(r.Skipped, name)
		r.RbIdx++
		c.mu.Unlock()
		return
	}
	c.mu.Unlock()

	lines, err := c.rpc(name, "rollback "+r.Slot, false)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		return // retry next Step; if the worker went down we skip it then
	}
	if last, ok := ReplyOK(lines); ok {
		c.setInstalledLocked(name, r.Slot, oldGen, parseLiveGen(last), true)
		c.eventLocked(Event{Kind: EventWorkerRolled, Worker: name, Slot: r.Slot,
			Detail: fmt.Sprintf("back to fleet gen%d", oldGen)})
	} else {
		// "err no previous program" or similar: this worker cannot unwind
		// locally (e.g. the slot was fresh); reconcile restores it from the
		// catalog if the catalog has a blessed version. Demote it so the next
		// Tick actually runs that reconcile — a Healthy worker is never
		// re-examined.
		r.Skipped = append(r.Skipped, name)
		if w := c.workers[name]; w != nil && w.health != Down {
			c.setHealthLocked(w, Recovering, "rollback refused; awaiting reconcile")
		}
		c.eventLocked(Event{Kind: EventWorkerRolled, Worker: name, Slot: r.Slot,
			Detail: "local rollback refused (" + lastLine(lines) + "); left to reconcile"})
	}
	r.RbIdx++
}

// RolloutStatus returns a copy of the current rollout, or nil.
func (c *Controller) RolloutStatus() *Rollout {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.rollout == nil {
		return nil
	}
	cp := c.rollout.clone()
	return &cp
}
