// Package fleet is the control plane over a set of worker merlinds. A
// Controller tracks worker health through a failure detector and per-worker
// circuit breaker, routes slot traffic across the fleet on a consistent-hash
// ring, runs rolling deploys that reuse each worker's canary state machine
// (halting and rolling the whole fleet back when any node's divergence gate
// fires), and journals its own state so a killed controller resumes an
// in-flight rollout instead of forgetting it.
//
// Every worker interaction goes through the Transport interface using the
// merlind line protocol, so the same controller drives real TCP daemons,
// in-process workers (LocalTransport), and chaos-wrapped transports that
// drop, delay, duplicate, and partition at will.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"merlin/internal/journal"
	"merlin/internal/lifecycle"
	"merlin/internal/metrics"
	"merlin/internal/superopt"
)

// Config tunes the controller. Zero fields take the documented defaults.
type Config struct {
	// RPCTimeout bounds every worker RPC (default 2s).
	RPCTimeout time.Duration
	// ReadRetries is how many times an idempotent (read) RPC is retried
	// after a transport failure (default 3). Mutating RPCs never retry
	// blindly — the rollout state machine resolves their ambiguity from a
	// status read instead.
	ReadRetries int
	// RetryBase / RetryMax shape the jittered exponential backoff between
	// read retries (defaults 50ms / 2s).
	RetryBase time.Duration
	RetryMax  time.Duration
	// SuspectAfter / DownAfter are the consecutive transport-failure counts
	// that demote a worker to suspect / down (defaults 1 / 3).
	SuspectAfter int
	DownAfter    int
	// BreakerBase / BreakerMax bound the circuit breaker cooldown; it
	// starts at base and doubles per failed probe (defaults 500ms / 30s).
	BreakerBase time.Duration
	BreakerMax  time.Duration
	// VNodes is the number of hash-ring points per worker (default 64).
	VNodes int
	// TrafficBatch is the packets-per-chunk granularity of traffic fan-out
	// (default 8): each chunk routes independently and fails over whole.
	TrafficBatch int
	// MaxCanarySteps bounds how many canary-feed steps the rollout spends
	// on one worker before declaring it stalled (default 32).
	MaxCanarySteps int
	// CompactEvery compacts the controller journal after this many appends
	// (default 128).
	CompactEvery int
	// MaxEvents caps the fleet event ring (default 128).
	MaxEvents int
	// Replication is the number of distinct workers each slot is placed on
	// (R). 0 keeps the legacy mirror mode: every slot on every worker, no
	// placement map. With R > 0 traffic routes only to a slot's replicas and
	// the rebalancer repairs under-replication.
	Replication int
	// RepairConcurrency bounds how many repair tasks run at once (default 2)
	// so a mass failure cannot stampede the survivors.
	RepairConcurrency int
	// RepairMaxFails is how many transport-level retries one repair task gets
	// before it is abandoned (default 5).
	RepairMaxFails int
	// RepairBreakerAfter is how many abandoned repairs in a row open a
	// slot's repair circuit breaker (default 3) — a flapping worker or a
	// gate-refusing target must not wedge the rebalancer.
	RepairBreakerAfter int
	// RepairBackoff / RepairBackoffMax shape the jittered exponential
	// backoff between repair retries and breaker cooldowns (defaults
	// 250ms / 10s).
	RepairBackoff    time.Duration
	RepairBackoffMax time.Duration
	// StatusFallbackEvery bounds event-watermark trust during canary feeds:
	// after this many consecutive skipped status polls the controller polls
	// anyway (default 4). See stepCanary.
	StatusFallbackEvery int
	// AuthToken, when non-empty, is prefixed to every worker RPC as
	// "auth <token> <cmd>"; workers sharing the token verify it in constant
	// time and refuse everything else.
	AuthToken string
	// Seed drives breaker/retry jitter deterministically.
	Seed uint64
	// Now is the controller clock (default time.Now); tests inject a fake.
	Now func() time.Time
	// Metrics, when set, receives fleet telemetry.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.RPCTimeout <= 0 {
		c.RPCTimeout = 2 * time.Second
	}
	if c.ReadRetries == 0 {
		c.ReadRetries = 3
	}
	if c.RetryBase <= 0 {
		c.RetryBase = 50 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 2 * time.Second
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 1
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.BreakerBase <= 0 {
		c.BreakerBase = 500 * time.Millisecond
	}
	if c.BreakerMax <= 0 {
		c.BreakerMax = 30 * time.Second
	}
	if c.VNodes <= 0 {
		c.VNodes = 64
	}
	if c.TrafficBatch <= 0 {
		c.TrafficBatch = 8
	}
	if c.MaxCanarySteps <= 0 {
		c.MaxCanarySteps = 32
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = 128
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 128
	}
	if c.RepairConcurrency <= 0 {
		c.RepairConcurrency = 2
	}
	if c.RepairMaxFails <= 0 {
		c.RepairMaxFails = 5
	}
	if c.RepairBreakerAfter <= 0 {
		c.RepairBreakerAfter = 3
	}
	if c.RepairBackoff <= 0 {
		c.RepairBackoff = 250 * time.Millisecond
	}
	if c.RepairBackoffMax <= 0 {
		c.RepairBackoffMax = 10 * time.Second
	}
	if c.StatusFallbackEvery <= 0 {
		c.StatusFallbackEvery = 4
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// CatalogSlot is the fleet's blessed version of one slot: the source
// descriptor every worker must run and the fleet generation that blessed it.
// The catalog only advances when a rollout completes on every worker — a
// halted rollout leaves it untouched, which is what makes reconcile roll a
// partitioned half-promoted worker back instead of forward.
type CatalogSlot struct {
	Name string `json:"name"`
	Src  string `json:"src"`
	Gen  int    `json:"gen"`
}

// installedRec records what the controller last confirmed on a worker:
// which fleet generation of a slot it promoted and the worker-local live
// generation that corresponds to it. Reconcile compares a worker's actual
// status against this and the catalog to decide whether to push, roll back,
// or leave alone.
type installedRec struct {
	Worker   string `json:"worker"`
	Slot     string `json:"slot"`
	FleetGen int    `json:"fleetGen"`
	LocalGen int    `json:"localGen"`
	Gone     bool   `json:"gone,omitempty"` // tombstone: the slot was drained
}

// worker is the controller's view of one merlind.
type worker struct {
	name string
	addr string

	health    Health
	fails     int           // consecutive transport failures
	cooldown  time.Duration // current breaker cooldown (down only)
	openUntil time.Time     // breaker open until (down only)
	lastErr   string
}

// errBreakerOpen marks RPCs rejected locally without touching the network.
var errBreakerOpen = errors.New("circuit breaker open")

// Controller is the fleet control plane. All exported methods are safe for
// concurrent use: cheap state lives under mu (never held across an RPC),
// while stepMu serializes the multi-RPC compound operations (Tick, Step) so
// the rollout state machine and reconcile never interleave.
type Controller struct {
	cfg Config
	tr  Transport
	met *fleetMetrics

	mu         sync.Mutex
	workers    map[string]*worker
	catalog    map[string]*CatalogSlot
	installed  map[string]map[string]installedRec // worker → slot → rec
	placements map[string]*Placement              // slot → replicas (R > 0 only)
	rollout    *Rollout
	events     []Event
	eventSeq   int
	rng        uint64
	trafficSeq int
	eseqs      map[string]int         // worker+"/"+slot → event watermark
	repairQ    []*repairTask          // pending repairs, FIFO
	repairs    map[string]*repairTask // active repairs, one per slot
	repairBk   map[string]*repairBreaker

	jl       *journal.Log
	jAppends int

	stepMu sync.Mutex

	// Superopt cache federation state, touched only under stepMu (see
	// CacheSync). Watermarks are deliberately not journaled: after a
	// controller restart the first sync re-pulls full exports, and merging
	// is an idempotent union.
	fedCache *superopt.Cache
	fedSeqs  map[string]uint64 // worker → cacheexport watermark
}

// New returns a Controller speaking over tr.
func New(cfg Config, tr Transport) *Controller {
	cfg = cfg.withDefaults()
	c := &Controller{
		cfg:        cfg,
		tr:         tr,
		met:        newFleetMetrics(cfg.Metrics),
		workers:    map[string]*worker{},
		catalog:    map[string]*CatalogSlot{},
		installed:  map[string]map[string]installedRec{},
		placements: map[string]*Placement{},
		eseqs:      map[string]int{},
		repairs:    map[string]*repairTask{},
		repairBk:   map[string]*repairBreaker{},
		rng:        cfg.Seed | 1,
	}
	return c
}

// splitmix64 advances the jitter stream.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	z := x
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// jitterLocked spreads d over [d/2, 3d/2) deterministically.
func (c *Controller) jitterLocked(d time.Duration) time.Duration {
	c.rng = splitmix64(c.rng)
	if d <= 0 {
		return 0
	}
	half := d / 2
	return half + time.Duration(c.rng%uint64(d))
}

// ---- health & RPC --------------------------------------------------------

// rpc performs one worker RPC with breaker gating, per-call deadline, and —
// for idempotent reads — retry with jittered exponential backoff. The
// worker's health machine is fed from the transport outcome.
func (c *Controller) rpc(name, line string, read bool) ([]string, error) {
	return c.rpcWith(name, line, read, false)
}

// rpcWith is rpc with an escape hatch: ignoreBreaker sends to a down worker
// even inside its cooldown window. Traffic's last-resort path uses it when
// the alternative is dropping packets — a success then doubles as a probe.
func (c *Controller) rpcWith(name, line string, read, ignoreBreaker bool) ([]string, error) {
	line = AuthLine(c.cfg.AuthToken, line)
	c.mu.Lock()
	w := c.workers[name]
	if w == nil {
		c.mu.Unlock()
		return nil, fmt.Errorf("fleet: unknown worker %q", name)
	}
	addr := w.addr
	attempts := 1
	switch w.health {
	case Down:
		if !ignoreBreaker && c.cfg.Now().Before(w.openUntil) {
			c.mu.Unlock()
			if c.met != nil {
				c.met.breakerFast.Inc()
			}
			return nil, fmt.Errorf("fleet: worker %s: %w", name, errBreakerOpen)
		}
		// Cooldown expired (or overridden): this RPC is the half-open probe.
		// One shot.
		if c.met != nil {
			c.met.probes.Inc()
		}
	default:
		if read {
			attempts += c.cfg.ReadRetries
		}
	}
	// Pre-compute the jittered backoff schedule under mu so the RPC loop
	// never touches controller state.
	backoffs := make([]time.Duration, 0, attempts-1)
	d := c.cfg.RetryBase
	for i := 1; i < attempts; i++ {
		backoffs = append(backoffs, c.jitterLocked(d))
		if d *= 2; d > c.cfg.RetryMax {
			d = c.cfg.RetryMax
		}
	}
	c.mu.Unlock()

	var lines []string
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			if c.met != nil {
				c.met.retries.Inc()
			}
			time.Sleep(backoffs[i-1])
		}
		ctx, cancel := context.WithTimeout(context.Background(), c.cfg.RPCTimeout)
		lines, err = c.tr.RPC(ctx, addr, line)
		cancel()
		if c.met != nil {
			c.met.rpcs.Inc()
		}
		if err == nil {
			break
		}
		if c.met != nil {
			c.met.rpcFailures.Inc()
		}
	}

	c.mu.Lock()
	if w := c.workers[name]; w != nil {
		if err != nil {
			c.rpcFailedLocked(w, err)
		} else {
			c.rpcSucceededLocked(w)
		}
		c.gaugesLocked()
	}
	c.mu.Unlock()
	return lines, err
}

func (c *Controller) rpcFailedLocked(w *worker, err error) {
	w.fails++
	w.lastErr = err.Error()
	switch w.health {
	case Healthy:
		if w.fails >= c.cfg.SuspectAfter {
			c.setHealthLocked(w, Suspect, err.Error())
		}
	case Suspect:
		if w.fails >= c.cfg.DownAfter {
			c.openBreakerLocked(w, c.cfg.BreakerBase, err.Error())
		}
	case Recovering:
		c.openBreakerLocked(w, c.cfg.BreakerBase, err.Error())
	case Down:
		// Failed probe: double the cooldown and re-open.
		next := w.cooldown * 2
		if next > c.cfg.BreakerMax {
			next = c.cfg.BreakerMax
		}
		c.openBreakerLocked(w, next, err.Error())
	}
}

func (c *Controller) rpcSucceededLocked(w *worker) {
	w.fails = 0
	w.lastErr = ""
	switch w.health {
	case Suspect:
		c.setHealthLocked(w, Healthy, "rpc recovered")
	case Down:
		// Probe answered: the worker is back, but it is not routed until
		// reconcile has pushed the catalog at it (it may have restarted
		// empty or be carrying a half-promoted rollout).
		w.cooldown = 0
		c.setHealthLocked(w, Recovering, "probe succeeded")
	}
}

func (c *Controller) setHealthLocked(w *worker, h Health, why string) {
	if w.health == h {
		return
	}
	c.eventLocked(Event{Kind: EventHealthChange, Worker: w.name,
		Detail: fmt.Sprintf("%s → %s: %s", w.health, h, why)})
	w.health = h
}

func (c *Controller) openBreakerLocked(w *worker, cooldown time.Duration, why string) {
	w.cooldown = cooldown
	w.openUntil = c.cfg.Now().Add(c.jitterLocked(cooldown))
	c.setHealthLocked(w, Down, why)
}

// ---- membership ----------------------------------------------------------

// Join registers (or re-registers) a worker. Workers announce periodically;
// a repeat announce from a routable worker at the same address is a cheap
// heartbeat no-op. A new worker, a changed address, or an announce from a
// worker the controller holds down all enter through Recovering: the
// controller reconciles the worker against the catalog before routing to it.
func (c *Controller) Join(name, addr string) error {
	if name == "" || addr == "" {
		return errors.New("fleet: join needs a name and an address")
	}
	c.mu.Lock()
	w := c.workers[name]
	if w != nil && w.addr == addr && w.health.eligible() {
		c.mu.Unlock()
		return nil // heartbeat
	}
	if w == nil {
		w = &worker{name: name, addr: addr, health: Recovering}
		c.workers[name] = w
		c.eventLocked(Event{Kind: EventJoin, Worker: name, Detail: "addr=" + addr})
	} else {
		w.addr = addr
		w.fails = 0
		// An announce is the worker itself talking to us — as good as a
		// successful probe.
		c.setHealthLocked(w, Recovering, "worker announced")
	}
	c.journalLocked(record{Kind: recWorker, Worker: &workerRec{Name: name, Addr: addr}}, true)
	c.gaugesLocked()
	c.mu.Unlock()
	// stepMu serializes this reconcile against rollout steps, so a rejoining
	// worker can safely be caught up even on the slot a rollout owns.
	c.stepMu.Lock()
	defer c.stepMu.Unlock()
	return c.reconcile(name)
}

// Workers returns the known worker names, sorted.
func (c *Controller) Workers() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.workerNamesLocked(func(*worker) bool { return true })
}

// Leave removes a worker from the fleet for good: membership, installed
// records, and every placement naming it are scrubbed (journaled), leaving
// the affected slots under-replicated for the rebalancer to repair onto the
// survivors. Refused while a rollout is in flight — the rollout's worker
// order must stay meaningful.
func (c *Controller) Leave(name string) error {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.workers[name] == nil {
		return fmt.Errorf("fleet: unknown worker %q", name)
	}
	if c.rollout != nil && !c.rollout.terminal() {
		return errors.New("fleet: cannot remove a worker during an in-flight rollout")
	}
	delete(c.workers, name)
	delete(c.installed, name)
	c.dropRepairsForWorkerLocked(name)
	for _, slot := range c.placementSlotsLocked() {
		pl := c.placements[slot]
		if !containsStr(pl.Replicas, name) {
			continue
		}
		c.setPlacementLocked(slot, withoutStr(pl.Replicas, name), "worker "+name+" left")
	}
	c.journalLocked(record{Kind: recWorker, Worker: &workerRec{Name: name, Gone: true}}, true)
	c.eventLocked(Event{Kind: EventLeave, Worker: name, Detail: "removed from fleet"})
	c.gaugesLocked()
	return nil
}

func (c *Controller) workerNamesLocked(keep func(*worker) bool) []string {
	names := make([]string, 0, len(c.workers))
	for n, w := range c.workers {
		if keep(w) {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// ---- reconcile -----------------------------------------------------------

// reconcile drives one worker to the catalog: every blessed slot must be
// live at the generation the controller last confirmed — judged against the
// worker's *actual* status reply, never the journal alone, so a worker that
// promoted during a one-way partition (or restarted empty) converges no
// matter what the controller missed. On a clean pass a recovering worker
// becomes healthy and rejoins the ring.
func (c *Controller) reconcile(name string) error {
	if c.met != nil {
		c.met.reconciles.Inc()
	}
	lines, err := c.rpc(name, "status", true)
	if err != nil {
		return err
	}
	live := map[string]lifecycle.SlotStatus{}
	for _, l := range lines {
		if st, perr := lifecycle.ParseSlotStatus(l); perr == nil {
			live[st.Slot] = st
		}
	}

	type action struct {
		slot, src string
		fleetGen  int
		why       string
	}
	c.mu.Lock()
	var acts []action
	var drains []string
	deferred := false
	rolloutSlot := ""
	rolloutGen := 0
	rolloutCand := map[string]int{}
	if c.rollout != nil && !c.rollout.terminal() {
		rolloutSlot = c.rollout.Slot
		rolloutGen = c.rollout.Gen
		rolloutCand = c.rollout.CandGen
	}
	for slotName, cat := range c.catalog {
		if !c.placedLocked(slotName, name) {
			// Placement moved this slot off the worker (or never put it
			// there). A live copy is stale and must drain — except while a
			// rollout owns the slot, when we defer rather than mutate under
			// its feet. A leftover installed record with no live copy is
			// erased outright.
			if _, present := live[slotName]; present {
				if slotName == rolloutSlot {
					deferred = true
				} else {
					drains = append(drains, slotName)
				}
			} else if _, ok := c.installedLocked(name)[slotName]; ok {
				c.deleteInstalledLocked(name, slotName)
			}
			continue
		}
		if slotName == rolloutSlot {
			// The active rollout owns this slot, and reconcile runs under
			// stepMu so it cannot race the rollout's own actions. A worker
			// MISSING the slot entirely (it restarted empty) gets the blessed
			// version pushed right away — it must keep serving traffic, and if
			// the rollout later deploys here the candidate now stages against
			// a real incumbent and pays the canary gate. A worker that HAS the
			// slot is admitted only when its live program is one the control
			// plane can vouch for: the version last installed (blessed, or
			// promoted by this very rollout), or a candidate the rollout
			// staged here that cleared the local canary gate (a promote whose
			// reply was lost). A live program nothing accounts for — an
			// ungated switch, a refused rollback — keeps the worker in
			// Recovering until the rollout settles and a full pass repairs it.
			inst, ok := c.installedLocked(name)[slotName]
			st, present := live[slotName]
			switch {
			case !present:
				acts = append(acts, action{slotName, cat.Src, cat.Gen, "slot missing mid-rollout"})
			case (ok && st.LiveGeneration == inst.LocalGen &&
				(inst.FleetGen == cat.Gen || inst.FleetGen == rolloutGen)) ||
				(rolloutCand[name] != 0 && st.LiveGeneration == rolloutCand[name]):
				// vouched: nothing to do
			default:
				deferred = true
			}
			continue
		}
		inst, ok := c.installedLocked(name)[slotName]
		st, present := live[slotName]
		switch {
		case !present:
			acts = append(acts, action{slotName, cat.Src, cat.Gen, "slot missing"})
		case !ok || inst.FleetGen != cat.Gen || st.LiveGeneration != inst.LocalGen:
			acts = append(acts, action{slotName, cat.Src, cat.Gen,
				fmt.Sprintf("live=gen%d installed=%+v catalog=gen%d",
					st.LiveGeneration, inst, cat.Gen)})
		}
	}
	c.mu.Unlock()

	for _, a := range acts {
		liveGen, err := c.pushSlot(name, a.slot, a.src)
		if err != nil {
			return err
		}
		c.mu.Lock()
		c.setInstalledLocked(name, a.slot, a.fleetGen, liveGen, true)
		c.eventLocked(Event{Kind: EventReconciled, Worker: name, Slot: a.slot,
			Detail: fmt.Sprintf("%s → pushed gen%d (live=gen%d)", a.why, a.fleetGen, liveGen)})
		c.mu.Unlock()
	}

	sort.Strings(drains)
	for _, slotName := range drains {
		lines, err := c.rpc(name, "drain "+slotName, false)
		if err != nil {
			return err
		}
		if _, ok := ReplyOK(lines); !ok {
			return fmt.Errorf("fleet: drain %s on %s: %s", slotName, name, lastLine(lines))
		}
		c.mu.Lock()
		c.deleteInstalledLocked(name, slotName)
		c.eventLocked(Event{Kind: EventDrained, Worker: name, Slot: slotName,
			Detail: "stale copy drained (not a replica)"})
		if c.met != nil {
			c.met.drains.Inc()
		}
		c.mu.Unlock()
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	if w := c.workers[name]; w != nil && w.health == Recovering && !deferred {
		c.setHealthLocked(w, Healthy, "reconciled against catalog")
		c.gaugesLocked()
	}
	return nil
}

// pushSlot deploys src on a worker and force-promotes it, returning the
// resulting live generation. Used by reconcile, where the version being
// pushed already earned fleet blessing — the per-worker canary gate was paid
// during the rollout that blessed it.
func (c *Controller) pushSlot(name, slot, src string) (int, error) {
	lines, err := c.rpc(name, "deploy "+slot+" "+src, false)
	if err != nil {
		return 0, err
	}
	rep, ok := parseDeployReply(lines)
	if !ok {
		return 0, fmt.Errorf("fleet: deploy %s on %s: %s", slot, name, lastLine(lines))
	}
	if rep.candGen == 0 {
		return rep.liveGen, nil // fresh slot: went live immediately
	}
	lines, err = c.rpc(name, "promote "+slot+" force", false)
	if err != nil {
		return 0, err
	}
	last, ok := ReplyOK(lines)
	if !ok {
		return 0, fmt.Errorf("fleet: promote %s on %s: %s", slot, name, lastLine(lines))
	}
	return parseLiveGen(last), nil
}

func (c *Controller) installedLocked(worker string) map[string]installedRec {
	m := c.installed[worker]
	if m == nil {
		m = map[string]installedRec{}
		c.installed[worker] = m
	}
	return m
}

func (c *Controller) setInstalledLocked(worker, slot string, fleetGen, localGen int, sync bool) {
	rec := installedRec{Worker: worker, Slot: slot, FleetGen: fleetGen, LocalGen: localGen}
	c.installedLocked(worker)[slot] = rec
	c.journalLocked(record{Kind: recInstalled, Installed: &rec}, sync)
}

// deleteInstalledLocked erases the confirmation record for a drained slot and
// journals a tombstone so recovery does not resurrect it.
func (c *Controller) deleteInstalledLocked(worker, slot string) {
	if _, ok := c.installed[worker][slot]; !ok {
		return
	}
	delete(c.installed[worker], slot)
	rec := installedRec{Worker: worker, Slot: slot, Gone: true}
	c.journalLocked(record{Kind: recInstalled, Installed: &rec}, true)
}

// ---- tick ----------------------------------------------------------------

// Tick runs one maintenance pass: probe every down worker whose breaker
// cooldown has expired, reconcile every recovering worker, republish gauges.
// Call it periodically; it is also safe to call in a tight loop.
func (c *Controller) Tick() {
	c.stepMu.Lock()
	defer c.stepMu.Unlock()

	c.mu.Lock()
	now := c.cfg.Now()
	var probe, recon []string
	for n, w := range c.workers {
		switch w.health {
		case Down:
			if !now.Before(w.openUntil) {
				probe = append(probe, n)
			}
		case Recovering:
			recon = append(recon, n)
		}
	}
	sort.Strings(probe)
	sort.Strings(recon)
	c.mu.Unlock()

	for _, n := range probe {
		// The status RPC doubles as the half-open probe; on success the
		// health machine lands in Recovering and we reconcile right away.
		if _, err := c.rpc(n, "status", false); err == nil {
			recon = append(recon, n)
		}
	}
	for _, n := range recon {
		_ = c.reconcile(n) // failures re-open the breaker via the rpc path
	}

	// With placement enabled, one rebalance pass: detect under-replicated
	// slots, advance each active repair by one step.
	c.rebalance()

	c.mu.Lock()
	c.gaugesLocked()
	c.mu.Unlock()
}

// ---- traffic -------------------------------------------------------------

// TrafficReport summarizes one fan-out.
type TrafficReport struct {
	Sent     int // packets that reached some worker
	Rerouted int // chunks that failed over past their ring owner
	Dropped  int // packets no worker accepted
}

// Traffic fans n synthetic packets for slot across the slot's routable
// replicas in TrafficBatch chunks (across all routable workers in legacy
// mirror mode). Each chunk hashes to an owner on the consistent ring; a
// transport or application failure fails the chunk over down the ring's
// successor order — with placement that failover is the replica set, so a
// dead replica's traffic lands on its surviving peers. Only when no worker
// anywhere accepts the chunk is it counted dropped — graceful degradation,
// not an error.
func (c *Controller) Traffic(slot string, n int) TrafficReport {
	var rep TrafficReport
	if n <= 0 {
		return rep
	}
	c.mu.Lock()
	replicas := c.replicasLocked(slot) // nil → legacy: any eligible worker
	placed := replicas != nil
	var pool []string
	if placed {
		for _, rn := range replicas {
			if w := c.workers[rn]; w != nil && w.health.eligible() {
				pool = append(pool, rn)
			}
		}
	} else {
		pool = c.workerNamesLocked(func(w *worker) bool { return w.health.eligible() })
	}
	r := buildRing(pool, c.cfg.VNodes)
	batch := c.cfg.TrafficBatch
	chunks := (n + batch - 1) / batch
	seq := c.trafficSeq
	c.trafficSeq += chunks
	c.mu.Unlock()

	for i := 0; i < chunks; i++ {
		size := batch
		if i == chunks-1 {
			size = n - batch*(chunks-1)
		}
		key := slot + "/" + strconv.Itoa(seq+i)
		cmd := "traffic " + slot + " " + strconv.Itoa(size)
		sent := false
		tried := map[string]bool{}
		for hop, name := range r.lookup(key, len(pool)) {
			tried[name] = true
			lines, err := c.rpc(name, cmd, false)
			if err == nil {
				if _, ok := ReplyOK(lines); ok {
					if hop > 0 {
						rep.Rerouted++
						if c.met != nil {
							c.met.reroutes.Inc()
							if placed {
								c.met.failovers.Inc()
							}
						}
					}
					rep.Sent += size
					if c.met != nil {
						c.met.trafficSent.Add(uint64(size))
					}
					sent = true
					break
				}
			}
		}
		if !sent {
			// Last resort before dropping: every routable replica failed (or
			// none existed), so try everyone else — unroutable replicas
			// first, then non-replicas that may still hold an undrained
			// copy — circuit breakers notwithstanding. A transiently-faulted
			// worker often answers — packet loss is worse than hammering a
			// dead one — and a success feeds the health machine like any
			// probe.
			c.mu.Lock()
			var rest []string
			for _, rn := range replicas {
				if !tried[rn] && c.workers[rn] != nil {
					rest = append(rest, rn)
					tried[rn] = true
				}
			}
			for _, name := range c.workerNamesLocked(func(*worker) bool { return true }) {
				if !tried[name] {
					rest = append(rest, name)
				}
			}
			c.mu.Unlock()
			for _, name := range rest {
				lines, err := c.rpcWith(name, cmd, false, true)
				if err != nil {
					continue
				}
				if _, ok := ReplyOK(lines); ok {
					rep.Rerouted++
					rep.Sent += size
					if c.met != nil {
						c.met.reroutes.Inc()
						c.met.lastResort.Inc()
						if placed {
							c.met.failovers.Inc()
						}
						c.met.trafficSent.Add(uint64(size))
					}
					sent = true
					break
				}
			}
		}
		if !sent {
			rep.Dropped += size
			if c.met != nil {
				c.met.dropped.Add(uint64(size))
			}
		}
	}
	return rep
}

// ---- status --------------------------------------------------------------

// WorkerInfo is one worker's row in the fleet status.
type WorkerInfo struct {
	Name    string
	Addr    string
	Health  Health
	Fails   int
	Breaker time.Duration // remaining breaker cooldown (down only)
	LastErr string
}

// PlacementView is one slot's placement row in the fleet status.
type PlacementView struct {
	Slot     string
	Replicas []string
	Live     int // replicas currently routable
	Ver      int
}

// Status is a point-in-time fleet summary.
type Status struct {
	Workers    []WorkerInfo
	Catalog    []CatalogSlot
	Placements []PlacementView // empty in legacy mirror mode
	Rollout    *Rollout        // copy; nil when none was ever started
	Degraded   bool
}

// FleetStatus captures the controller's current view.
func (c *Controller) FleetStatus() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	var st Status
	now := c.cfg.Now()
	for _, n := range c.workerNamesLocked(func(*worker) bool { return true }) {
		w := c.workers[n]
		wi := WorkerInfo{Name: n, Addr: w.addr, Health: w.health,
			Fails: w.fails, LastErr: w.lastErr}
		if w.health == Down && w.openUntil.After(now) {
			wi.Breaker = w.openUntil.Sub(now)
		}
		if !w.health.eligible() {
			st.Degraded = true
		}
		st.Workers = append(st.Workers, wi)
	}
	slots := make([]string, 0, len(c.catalog))
	for n := range c.catalog {
		slots = append(slots, n)
	}
	sort.Strings(slots)
	for _, n := range slots {
		st.Catalog = append(st.Catalog, *c.catalog[n])
	}
	for _, n := range c.placementSlotsLocked() {
		pl := c.placements[n]
		st.Placements = append(st.Placements, PlacementView{
			Slot:     n,
			Replicas: append([]string(nil), pl.Replicas...),
			Live:     c.liveReplicasLocked(pl),
			Ver:      pl.Ver,
		})
	}
	if c.rollout != nil {
		cp := c.rollout.clone()
		st.Rollout = &cp
	}
	return st
}

// Lines renders the status in the merlind line-protocol style, one line per
// worker / slot / rollout, so the daemon and tests share formatting.
func (s Status) Lines() []string {
	var out []string
	for _, w := range s.Workers {
		l := fmt.Sprintf("worker=%s addr=%s health=%s fails=%d", w.Name, w.Addr, w.Health, w.Fails)
		if w.Breaker > 0 {
			l += fmt.Sprintf(" breaker=%s", w.Breaker.Round(time.Millisecond))
		}
		if w.LastErr != "" {
			l += fmt.Sprintf(" err=%q", w.LastErr)
		}
		out = append(out, l)
	}
	for _, cs := range s.Catalog {
		out = append(out, fmt.Sprintf("slot=%s gen=%d src=%q", cs.Name, cs.Gen, cs.Src))
	}
	for _, pv := range s.Placements {
		out = append(out, fmt.Sprintf("placement slot=%s ver=%d live=%d/%d replicas=%s",
			pv.Slot, pv.Ver, pv.Live, len(pv.Replicas), strings.Join(pv.Replicas, ",")))
	}
	if r := s.Rollout; r != nil {
		l := fmt.Sprintf("rollout slot=%s gen=%d phase=%s worker=%d/%d promoted=%d",
			r.Slot, r.Gen, r.Phase, r.Idx, len(r.Order), len(r.Promoted))
		if r.Reason != "" {
			l += fmt.Sprintf(" reason=%q", r.Reason)
		}
		out = append(out, l)
	}
	out = append(out, fmt.Sprintf("degraded=%v", s.Degraded))
	return out
}

// ---- aggregated metrics --------------------------------------------------

// WriteMetrics writes the controller's own registry followed by every
// routable worker's scrape re-labeled with worker="<name>", giving a single
// fleet-wide exposition endpoint. Unreachable workers are skipped — their
// absence is itself visible through merlin_fleet_workers{state="down"}.
func (c *Controller) WriteMetrics(w io.Writer) error {
	if c.cfg.Metrics != nil {
		if err := c.cfg.Metrics.WriteText(w); err != nil {
			return err
		}
	}
	c.mu.Lock()
	names := c.workerNamesLocked(func(wk *worker) bool { return wk.health.eligible() })
	c.mu.Unlock()
	for _, n := range names {
		lines, err := c.rpc(n, "metrics", true)
		if err != nil {
			continue
		}
		if _, ok := ReplyOK(lines); !ok {
			continue
		}
		body := strings.Join(lines[:len(lines)-1], "\n")
		if err := metrics.RelabelText(w, strings.NewReader(body), "worker", n); err != nil {
			return err
		}
	}
	return nil
}

// ---- reply parsing -------------------------------------------------------

type deployReply struct {
	slot    string
	stage   string
	liveGen int
	candGen int
}

// parseDeployReply parses "ok deploy <slot> stage=<s> live=genN
// [candidate=genM]".
func parseDeployReply(lines []string) (deployReply, bool) {
	last, ok := ReplyOK(lines)
	if !ok || !strings.HasPrefix(last, "ok deploy ") {
		return deployReply{}, false
	}
	f := strings.Fields(last)
	rep := deployReply{slot: f[2]}
	for _, kv := range f[3:] {
		k, v, _ := strings.Cut(kv, "=")
		switch k {
		case "stage":
			rep.stage = v
		case "live":
			rep.liveGen = genOf(v)
		case "candidate":
			rep.candGen = genOf(v)
		}
	}
	return rep, true
}

// parseEseq extracts the event-sequence watermark (eseq=N) a worker
// piggybacks on traffic and status replies. Absent on pre-watermark workers —
// the caller falls back to a full status poll.
func parseEseq(lines []string) (int, bool) {
	last, ok := ReplyOK(lines)
	if !ok {
		return 0, false
	}
	for _, kv := range strings.Fields(last) {
		if v, found := strings.CutPrefix(kv, "eseq="); found {
			n, err := strconv.Atoi(v)
			if err != nil {
				return 0, false
			}
			return n, true
		}
	}
	return 0, false
}

// parseLiveGen extracts live=genN from an ok line (promote / rollback).
func parseLiveGen(line string) int {
	for _, kv := range strings.Fields(line) {
		if v, ok := strings.CutPrefix(kv, "live="); ok {
			return genOf(v)
		}
	}
	return 0
}

func genOf(v string) int {
	v = strings.TrimPrefix(v, "gen")
	n, _ := strconv.Atoi(v)
	return n
}

func lastLine(lines []string) string {
	if len(lines) == 0 {
		return "(no reply)"
	}
	return lines[len(lines)-1]
}
