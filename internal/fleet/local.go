package fleet

import (
	"context"
	"encoding/base64"
	"fmt"
	"strconv"
	"strings"
	"sync"

	"merlin/internal/core"
	"merlin/internal/ebpf"
	"merlin/internal/guard"
	"merlin/internal/lifecycle"
	"merlin/internal/metrics"
	"merlin/internal/superopt"
)

// LocalTransport hosts in-process workers, each a real lifecycle.Manager
// behind a miniature merlind dispatch speaking the same reply grammar as the
// daemon. It is the fleet test-bed: Kill drops a worker off the network like
// a SIGKILL (connections refused, state retained or lost per Restart), and
// wrapping the transport in WithChaos injects partitions in front of it.
type LocalTransport struct {
	mu      sync.Mutex
	workers map[string]*LocalWorker
}

func NewLocalTransport() *LocalTransport {
	return &LocalTransport{workers: map[string]*LocalWorker{}}
}

// LocalWorker is one in-process merlind stand-in.
type LocalWorker struct {
	mu   sync.Mutex
	name string
	mgr  *lifecycle.Manager
	reg  *metrics.Registry
	cfg  lifecycle.Config

	resolve func(desc string) (lifecycle.Source, error)
	seed    uint64
	traffic int64
	down    bool
	token   string          // control token; "" accepts everything
	socache *superopt.Cache // per-incarnation verdict cache (federation)
}

// AddWorker creates a worker reachable at an address equal to its name. The
// manager uses cfg with a fresh metrics registry injected.
func (lt *LocalTransport) AddWorker(name string, cfg lifecycle.Config) *LocalWorker {
	w := &LocalWorker{name: name, cfg: cfg, resolve: ResolveTestSource, seed: fnv64a(name)}
	w.reset()
	lt.mu.Lock()
	lt.workers[name] = w
	lt.mu.Unlock()
	return w
}

func (w *LocalWorker) reset() {
	w.reg = metrics.New()
	cfg := w.cfg
	cfg.Metrics = w.reg
	w.mgr = lifecycle.NewManager(cfg)
	// Like merlind's default in-memory verdict cache, a restart loses it.
	w.socache = superopt.NewMemCache()
}

// Kill makes the worker unreachable, as a SIGKILL would.
func (lt *LocalTransport) Kill(name string) {
	if w := lt.get(name); w != nil {
		w.mu.Lock()
		w.down = true
		w.mu.Unlock()
	}
}

// Restart brings a killed worker back. fresh discards its manager state —
// the restarted daemon came up with an empty (or absent) journal — which is
// precisely the case reconcile exists for.
func (lt *LocalTransport) Restart(name string, fresh bool) {
	if w := lt.get(name); w != nil {
		w.mu.Lock()
		w.down = false
		if fresh {
			w.reset()
		}
		w.mu.Unlock()
	}
}

// SetToken arms the worker's control-listener auth: RPCs must carry a
// matching "auth <token>" prefix or they are refused.
func (lt *LocalTransport) SetToken(name, token string) {
	if w := lt.get(name); w != nil {
		w.mu.Lock()
		w.token = token
		w.mu.Unlock()
	}
}

// AuthFailures reads the worker's refused-RPC counter. Per-incarnation: a
// Restart resets the registry along with the rest of the worker.
func (lt *LocalTransport) AuthFailures(name string) int64 {
	w := lt.get(name)
	if w == nil {
		return 0
	}
	w.mu.Lock()
	reg := w.reg
	w.mu.Unlock()
	return reg.Snapshot()["merlin_fleet_auth_failures_total"]
}

// Cache exposes the worker's superopt verdict cache for federation tests.
func (lt *LocalTransport) Cache(name string) *superopt.Cache {
	if w := lt.get(name); w != nil {
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.socache
	}
	return nil
}

// Manager exposes the worker's lifecycle manager for test assertions.
func (lt *LocalTransport) Manager(name string) *lifecycle.Manager {
	if w := lt.get(name); w != nil {
		w.mu.Lock()
		defer w.mu.Unlock()
		return w.mgr
	}
	return nil
}

func (lt *LocalTransport) get(name string) *LocalWorker {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	return lt.workers[name]
}

func (lt *LocalTransport) RPC(ctx context.Context, addr, line string) ([]string, error) {
	w := lt.get(addr)
	if w == nil {
		return nil, fmt.Errorf("local: no route to %q", addr)
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.down {
		return nil, fmt.Errorf("local: connection to %q refused", addr)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return w.dispatch(line), nil
}

// dispatch mirrors the merlind line protocol for the verbs the controller
// speaks. Replies reuse the daemon's exact grammar so the controller's
// parsers are exercised identically in-process and over TCP.
func (w *LocalWorker) dispatch(line string) []string {
	rest, authed := CheckAuth(w.token, line)
	if !authed {
		if w.reg != nil {
			w.reg.Counter("merlin_fleet_auth_failures_total",
				"control RPCs refused for a missing or wrong token").Inc()
		}
		return []string{"err unauthorized"}
	}
	args := strings.Fields(rest)
	if len(args) == 0 {
		return []string{"err empty command"}
	}
	cmd, args := args[0], args[1:]
	switch cmd {
	case "deploy":
		if len(args) < 2 {
			return []string{"err usage: deploy <slot> <desc>"}
		}
		slot, desc := args[0], strings.Join(args[1:], " ")
		src, err := w.resolve(desc)
		if err != nil {
			return []string{"err " + err.Error()}
		}
		if err := w.mgr.DeployWith(slot, src, lifecycle.DeployOptions{SourceDesc: desc}); err != nil {
			return []string{"err " + err.Error()}
		}
		st, _ := w.mgr.StatusOf(slot)
		rep := fmt.Sprintf("ok deploy %s stage=%s live=gen%d", slot, st.Stage, st.LiveGeneration)
		if st.CandidateGeneration > 0 {
			rep += fmt.Sprintf(" candidate=gen%d", st.CandidateGeneration)
		}
		return []string{rep}
	case "promote":
		if len(args) < 1 {
			return []string{"err usage: promote <slot> [force]"}
		}
		force := len(args) > 1 && args[1] == "force"
		if err := w.mgr.Promote(args[0], force); err != nil {
			return []string{"err " + err.Error()}
		}
		st, _ := w.mgr.StatusOf(args[0])
		return []string{fmt.Sprintf("ok promote %s live=gen%d", args[0], st.LiveGeneration)}
	case "rollback":
		if len(args) != 1 {
			return []string{"err usage: rollback <slot>"}
		}
		if err := w.mgr.Rollback(args[0]); err != nil {
			return []string{"err " + err.Error()}
		}
		st, _ := w.mgr.StatusOf(args[0])
		return []string{fmt.Sprintf("ok rollback %s live=gen%d", args[0], st.LiveGeneration)}
	case "abort":
		if len(args) != 1 {
			return []string{"err usage: abort <slot>"}
		}
		if err := w.mgr.Abort(args[0]); err != nil {
			return []string{"err " + err.Error()}
		}
		st, _ := w.mgr.StatusOf(args[0])
		return []string{fmt.Sprintf("ok abort %s live=gen%d", args[0], st.LiveGeneration)}
	case "status":
		var out []string
		for _, st := range w.mgr.Status() {
			out = append(out, st.String())
		}
		return append(out, "ok status")
	case "traffic":
		if len(args) != 2 {
			return []string{"err usage: traffic <slot> <n>"}
		}
		n, err := strconv.Atoi(args[1])
		if err != nil || n <= 0 {
			return []string{"err traffic count must be a positive integer"}
		}
		inputs := guard.Inputs(ebpf.HookXDP, n, int64(w.seed)+w.traffic)
		w.traffic += int64(n)
		for _, in := range inputs {
			if _, _, err := w.mgr.Serve(args[0], in.Ctx, in.Pkt); err != nil {
				return []string{"err " + err.Error()}
			}
		}
		st, _ := w.mgr.StatusOf(args[0])
		return []string{fmt.Sprintf("ok traffic %s n=%d stage=%s served=%d mirrored=%d eseq=%d",
			args[0], n, st.Stage, st.Served, st.Mirrored, st.EventSeq)}
	case "drain":
		if len(args) != 1 {
			return []string{"err usage: drain <slot>"}
		}
		removed := w.mgr.Remove(args[0])
		return []string{fmt.Sprintf("ok drain %s removed=%v", args[0], removed)}
	case "tick":
		w.mgr.Tick()
		return []string{"ok tick"}
	case "metrics":
		w.mgr.CollectMetrics()
		out := strings.Split(strings.TrimRight(w.reg.Text(), "\n"), "\n")
		return append(out, "ok metrics")
	case "cacheexport":
		var since uint64
		if len(args) > 0 {
			v, err := strconv.ParseUint(args[0], 10, 64)
			if err != nil {
				return []string{"err cacheexport: since must be a non-negative integer"}
			}
			since = v
		}
		blob, seq, n, err := w.socache.Export(since)
		if err != nil {
			return []string{"err cacheexport: " + err.Error()}
		}
		return []string{
			"cachedata " + base64.StdEncoding.EncodeToString(blob),
			fmt.Sprintf("ok cacheexport seq=%d entries=%d", seq, n),
		}
	case "cachemerge":
		if len(args) != 1 {
			return []string{"err usage: cachemerge <base64-blob>"}
		}
		blob, err := base64.StdEncoding.DecodeString(args[0])
		if err != nil {
			return []string{"err cachemerge: bad base64"}
		}
		st, err := w.socache.Merge(blob)
		if err != nil {
			return []string{"err cachemerge: " + err.Error()}
		}
		return []string{fmt.Sprintf("ok cachemerge added=%d known=%d total=%d",
			st.Added, st.Known, w.socache.Len())}
	default:
		return []string{fmt.Sprintf("err unknown command %q", cmd)}
	}
}

// ---- test program sources ------------------------------------------------

// ResolveTestSource maps compact descriptors to deployable programs:
//
//	pass:N  — returns XDP_PASS with N instructions of dead ALU padding
//	drop:N  — returns XDP_DROP (diverges from any pass:* incumbent)
//	fault:N — dereferences out of bounds on every packet
//	bad:N   — the source itself fails to build
//
// The :N variant tag only differentiates generations; behavior depends on
// the prefix alone.
func ResolveTestSource(desc string) (lifecycle.Source, error) {
	kind, tag, _ := strings.Cut(desc, ":")
	pad, _ := strconv.Atoi(tag)
	if pad < 0 || pad > 1024 {
		pad = 0
	}
	var prog *ebpf.Program
	switch kind {
	case "pass":
		prog = testProg("pass-"+tag, 2, pad)
	case "drop":
		prog = testProg("drop-"+tag, 1, pad)
	case "fault":
		prog = &ebpf.Program{Name: "fault-" + tag, Hook: ebpf.HookXDP,
			Insns: []ebpf.Instruction{
				ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R1, 4096),
				ebpf.Exit(),
			}}
	case "bad":
		return func() (*core.Result, error) {
			return nil, fmt.Errorf("synthetic build failure (%s)", desc)
		}, nil
	default:
		return nil, fmt.Errorf("unknown test source %q", desc)
	}
	return func() (*core.Result, error) {
		return &core.Result{Prog: prog}, nil
	}, nil
}

// testProg reads the packet pointer and first byte (the canonical XDP
// preamble in this codebase), burns pad ALU instructions, and returns
// verdict.
func testProg(name string, verdict int32, pad int) *ebpf.Program {
	insns := []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R6, ebpf.R1, 0),
		ebpf.LoadMem(ebpf.SizeB, ebpf.R7, ebpf.R6, 0),
	}
	for i := 0; i < pad; i++ {
		insns = append(insns, ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R8, 1))
	}
	insns = append(insns, ebpf.Mov64Imm(ebpf.R0, verdict), ebpf.Exit())
	return &ebpf.Program{Name: name, Hook: ebpf.HookXDP, Insns: insns}
}
