package fleet

import (
	"strings"
	"testing"

	"merlin/internal/lifecycle"
)

func TestRollingDeployHappyPath(t *testing.T) {
	c, lt := testFleet(t, 3, Config{})
	r := runRollout(t, c, "s", "pass:0")
	if r.Phase != PhaseDone || len(r.Promoted) != 3 {
		t.Fatalf("bootstrap rollout = %+v", r)
	}

	r = runRollout(t, c, "s", "pass:8")
	if r.Phase != PhaseDone || len(r.Promoted) != 3 {
		t.Fatalf("upgrade rollout = %+v", r)
	}
	st := c.FleetStatus()
	if len(st.Catalog) != 1 || st.Catalog[0].Gen != 2 || st.Catalog[0].Src != "pass:8" {
		t.Fatalf("catalog = %+v", st.Catalog)
	}
	// Every worker serves the padded program: 8 extra insns vs pass:0.
	base := liveInsns(t, lt, "w1", "s")
	for _, w := range []string{"w2", "w3"} {
		if got := liveInsns(t, lt, w, "s"); got != base {
			t.Fatalf("fleet not uniform: %s serves %d insns, w1 serves %d", w, got, base)
		}
	}
	if base < 12 {
		t.Fatalf("padded program not live: %d insns", base)
	}
}

// One node's divergence gate halts the whole fleet and unwinds the workers
// already promoted — the core rollback guarantee.
func TestDivergenceOnOneWorkerRollsBackFleet(t *testing.T) {
	c, lt := testFleet(t, 3, Config{})
	if r := runRollout(t, c, "s", "pass:0"); r.Phase != PhaseDone {
		t.Fatalf("bootstrap = %+v", r)
	}
	if r := runRollout(t, c, "s", "pass:8"); r.Phase != PhaseDone {
		t.Fatalf("upgrade = %+v", r)
	}
	before := liveInsns(t, lt, "w1", "s")

	// w3 resolves the next descriptor to a program that returns a different
	// verdict: its mirror gate will reject what w1 and w2 accepted.
	w3 := lt.get("w3")
	w3.mu.Lock()
	w3.resolve = func(desc string) (lifecycle.Source, error) {
		if desc == "pass:16" {
			return ResolveTestSource("drop:16")
		}
		return ResolveTestSource(desc)
	}
	w3.mu.Unlock()

	r := runRollout(t, c, "s", "pass:16")
	if r.Phase != PhaseFailed {
		t.Fatalf("rollout phase = %s, want failed (%+v)", r.Phase, r)
	}
	if len(r.Promoted) != 2 {
		t.Fatalf("promoted = %v, want w1 and w2 before the halt", r.Promoted)
	}
	if !strings.Contains(r.Reason, "rejected") {
		t.Fatalf("reason = %q", r.Reason)
	}
	// The catalog never adopted the bad version...
	st := c.FleetStatus()
	if st.Catalog[0].Gen != 2 || st.Catalog[0].Src != "pass:8" {
		t.Fatalf("catalog moved despite failed rollout: %+v", st.Catalog)
	}
	// ...and every worker is back on it, serving the old verdict and size.
	for _, w := range []string{"w1", "w2", "w3"} {
		if got := liveInsns(t, lt, w, "s"); got != before {
			t.Fatalf("worker %s serves %d insns after rollback, want %d", w, got, before)
		}
	}
}

// A worker dying mid-rollout halts the rollout; the promoted prefix is
// unwound; the dead worker is restored by reconcile when it rejoins.
func TestWorkerDeathMidRolloutHaltsAndRollsBack(t *testing.T) {
	c, lt := testFleet(t, 3, Config{})
	if r := runRollout(t, c, "s", "pass:0"); r.Phase != PhaseDone {
		t.Fatalf("bootstrap = %+v", r)
	}
	if r := runRollout(t, c, "s", "pass:8"); r.Phase != PhaseDone {
		t.Fatalf("upgrade = %+v", r)
	}
	before := liveInsns(t, lt, "w1", "s")

	if err := c.Deploy("s", "pass:16"); err != nil {
		t.Fatal(err)
	}
	// Drive until w1 is promoted, then kill w2 while the rollout is parked
	// on it.
	for i := 0; i < 100; i++ {
		r := c.RolloutStatus()
		if len(r.Promoted) == 1 && r.Idx == 1 {
			break
		}
		if _, err := c.Step(); err != nil {
			t.Fatal(err)
		}
	}
	lt.Kill("w2")
	r := driveRollout(t, c)
	if r.Phase != PhaseFailed {
		t.Fatalf("rollout = %+v, want failed", r)
	}
	if !strings.Contains(r.Reason, "down") {
		t.Fatalf("reason = %q", r.Reason)
	}
	// w1 was unwound; w3 never saw the new version.
	for _, w := range []string{"w1", "w3"} {
		if got := liveInsns(t, lt, w, "s"); got != before {
			t.Fatalf("worker %s serves %d insns, want %d", w, got, before)
		}
	}

	// The dead worker comes back blank; reconcile restores the blessed
	// version, not the aborted one.
	lt.Restart("w2", true)
	if err := c.Join("w2", "w2"); err != nil {
		t.Fatalf("rejoin: %v", err)
	}
	if got := liveInsns(t, lt, "w2", "s"); got != before {
		t.Fatalf("rejoined worker serves %d insns, want %d", got, before)
	}
	if st := c.FleetStatus(); st.Degraded {
		t.Fatalf("fleet degraded after rejoin: %+v", st)
	}
}

// Deploy must refuse to start over a rollout already in flight, and with no
// routable workers.
func TestDeployPreconditions(t *testing.T) {
	c, lt := testFleet(t, 2, Config{})
	if err := c.Deploy("s", "pass:0"); err != nil {
		t.Fatal(err)
	}
	if err := c.Deploy("s", "pass:8"); err == nil {
		t.Fatal("second deploy started over an in-flight rollout")
	}
	driveRollout(t, c)

	lt.Kill("w1")
	lt.Kill("w2")
	for i := 0; i < 8; i++ {
		c.rpc("w1", "tick", false)
		c.rpc("w2", "tick", false)
	}
	if err := c.Deploy("s", "pass:8"); err == nil {
		t.Fatal("deploy started with every worker down")
	}
}
