package fleet

import (
	"fmt"
	"testing"
)

func TestRingLookupDistinctAndStable(t *testing.T) {
	workers := []string{"w1", "w2", "w3"}
	r := buildRing(workers, 64)
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("slot/%d", i)
		got := r.lookup(key, 3)
		if len(got) != 3 {
			t.Fatalf("lookup(%q) = %v, want 3 distinct workers", key, got)
		}
		seen := map[string]bool{}
		for _, w := range got {
			if seen[w] {
				t.Fatalf("lookup(%q) repeated worker: %v", key, got)
			}
			seen[w] = true
		}
		// Same key, same ring → same order, every time.
		again := r.lookup(key, 3)
		for j := range got {
			if got[j] != again[j] {
				t.Fatalf("lookup(%q) unstable: %v vs %v", key, got, again)
			}
		}
	}
}

// Removing one worker must only move the keys it owned: the consistent-hash
// property the fleet's graceful degradation rests on.
func TestRingRemovalMovesOnlyOwnedKeys(t *testing.T) {
	full := buildRing([]string{"w1", "w2", "w3"}, 64)
	reduced := buildRing([]string{"w1", "w3"}, 64)
	moved, kept := 0, 0
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("slot/%d", i)
		before := full.lookup(key, 1)[0]
		after := reduced.lookup(key, 1)[0]
		if before == "w2" {
			if after == "w2" {
				t.Fatalf("key %q still routed to removed worker", key)
			}
			moved++
			continue
		}
		if before != after {
			t.Fatalf("key %q owned by %s moved to %s though %s survived", key, before, after, before)
		}
		kept++
	}
	if moved == 0 || kept == 0 {
		t.Fatalf("degenerate distribution: moved=%d kept=%d", moved, kept)
	}
}

func TestRingBalance(t *testing.T) {
	workers := []string{"w1", "w2", "w3", "w4"}
	r := buildRing(workers, 64)
	counts := map[string]int{}
	const keys = 2000
	for i := 0; i < keys; i++ {
		counts[r.lookup(fmt.Sprintf("s/%d", i), 1)[0]]++
	}
	for _, w := range workers {
		if counts[w] < keys/len(workers)/3 {
			t.Fatalf("worker %s starved: %v", w, counts)
		}
	}
}

func TestRingEmptyAndBounds(t *testing.T) {
	if got := buildRing(nil, 64).lookup("k", 2); got != nil {
		t.Fatalf("empty ring lookup = %v", got)
	}
	r := buildRing([]string{"only"}, 8)
	if got := r.lookup("k", 5); len(got) != 1 || got[0] != "only" {
		t.Fatalf("single-worker lookup = %v", got)
	}
	if got := r.lookup("k", 0); got != nil {
		t.Fatalf("max=0 lookup = %v", got)
	}
}
