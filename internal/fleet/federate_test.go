package fleet

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"merlin/internal/ebpf"
	"merlin/internal/superopt"
)

// fedV builds a distinct verdict keyed by n.
func fedV(n int) superopt.Verdict {
	return superopt.Verdict{Improved: true, Repl: []ebpf.Instruction{ebpf.Mov64Imm(0, int32(n))}}
}

// TestCacheSyncFederatesFleet: verdicts searched on one worker reach every
// other worker through a controller sync round, and a second round is an
// incremental no-op (watermarks advance, nothing re-pulled).
func TestCacheSyncFederatesFleet(t *testing.T) {
	c, lt := testFleet(t, 3, Config{})
	for i := 0; i < 5; i++ {
		lt.Cache("w1").Put(fmt.Sprintf("k%d", i), fedV(i))
	}
	lt.Cache("w2").Put("k-w2", fedV(99))

	rep, err := c.CacheSync()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pulled != 3 || rep.Pushed != 3 || rep.Skipped != 0 {
		t.Fatalf("sync report %+v, want pulled=3 pushed=3 skipped=0", rep)
	}
	if rep.Entries != 6 || rep.Union != 6 {
		t.Fatalf("sync report %+v, want entries=6 union=6", rep)
	}
	// Every worker now holds the full union — including w3, which never
	// searched anything.
	for _, w := range []string{"w1", "w2", "w3"} {
		if n := lt.Cache(w).Len(); n != 6 {
			t.Errorf("%s cache has %d entries after sync, want 6", w, n)
		}
		if _, ok := lt.Cache(w).Get("k-w2"); !ok {
			t.Errorf("%s missed w2's verdict", w)
		}
	}
	// Second round: incremental. The deltas only contain what the push just
	// added (already in the union), so nothing grows and nothing conflicts.
	rep2, err := c.CacheSync()
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Union != 6 {
		t.Fatalf("second sync union=%d, want 6", rep2.Union)
	}
	// A fresh verdict on w3 propagates next round.
	lt.Cache("w3").Put("k-late", fedV(7))
	rep3, err := c.CacheSync()
	if err != nil {
		t.Fatal(err)
	}
	if rep3.Union != 7 {
		t.Fatalf("third sync union=%d, want 7", rep3.Union)
	}
	if _, ok := lt.Cache("w1").Get("k-late"); !ok {
		t.Error("late verdict did not reach w1")
	}
}

// TestCacheSyncSkipsDownWorkers: an unreachable worker is skipped (not
// fatal) and catches up after restart.
func TestCacheSyncSkipsDownWorkers(t *testing.T) {
	c, lt := testFleet(t, 2, Config{})
	lt.Cache("w1").Put("k", fedV(1))
	lt.Kill("w2")
	rep, err := c.CacheSync()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Pulled != 1 || rep.Skipped == 0 {
		t.Fatalf("sync report %+v, want pulled=1 and w2 skipped", rep)
	}
	lt.Restart("w2", true)
	time.Sleep(50 * time.Millisecond) // let w2's circuit breaker cool down
	rep, err = c.CacheSync()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := lt.Cache("w2").Get("k"); !ok {
		t.Fatalf("restarted worker missed the union (report %+v)", rep)
	}
}

// TestCacheSyncConflictAborts: a worker whose cache holds a different
// verdict for a known key fails the sync loudly, naming the worker, and the
// other workers' caches are not polluted with the conflicting entry.
func TestCacheSyncConflictAborts(t *testing.T) {
	c, lt := testFleet(t, 2, Config{})
	lt.Cache("w1").Put("shared", fedV(1))
	if _, err := c.CacheSync(); err != nil {
		t.Fatal(err)
	}
	// w2 now holds fedV(1) for "shared". Corrupt a fresh w2 with a
	// conflicting verdict and re-sync: the pull-phase merge must abort.
	lt.Restart("w2", true)
	lt.Cache("w2").Put("shared", fedV(2))
	_, err := c.CacheSync()
	if err == nil {
		t.Fatal("conflicting sync succeeded; want loud error")
	}
	if !strings.Contains(err.Error(), "conflict") || !strings.Contains(err.Error(), "w2") {
		t.Fatalf("conflict error must name the worker and the conflict: %v", err)
	}
	// The union and the healthy worker keep the original verdict.
	if v, ok := lt.Cache("w1").Get("shared"); !ok || v.Repl[0] != fedV(1).Repl[0] {
		t.Fatalf("w1's verdict disturbed by failed sync: %+v ok=%v", v, ok)
	}
}
