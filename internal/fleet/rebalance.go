package fleet

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"merlin/internal/lifecycle"
)

// The rebalancer repairs under-replicated slots: when a replica goes down
// (or leaves), it re-deploys the blessed catalog version onto a new worker
// chosen by the same ring walk that made the original placement, then swaps
// the placement over. Repairs run through the normal lifecycle pipeline —
// a target already holding an incumbent pays the full shadow→canary gate and
// a plain (never force) promote; only a target with no incumbent at all
// bootstraps live directly, exactly like reconcile pushing a blessed version
// at an empty worker. One step per task per Tick, at most RepairConcurrency
// tasks in flight, jittered-backoff retries per task, and a per-slot circuit
// breaker so a flapping worker or a gate-refusing target cannot wedge the
// fleet in a repair loop.

const (
	repairDeploy  = "deploy"
	repairCanary  = "canary"
	repairPromote = "promote"
)

// repairTask is one in-flight repair: re-replicating slot onto worker.
type repairTask struct {
	slot, worker, src string
	fleetGen          int
	phase             string
	candGen, prevLive int
	canary            int // canary-feed steps spent
	fails             int // transport-level retries consumed
	steps             int
	notBefore         time.Time // retry backoff gate
	started           time.Time
}

// repairBreaker is the per-slot circuit breaker over abandoned repairs.
type repairBreaker struct {
	fails     int // consecutive abandoned repairs
	cooldown  time.Duration
	openUntil time.Time
}

// rebalance runs one repair pass. Caller holds stepMu (it mutates the same
// worker/slot state the rollout machine does); never called with mu held.
func (c *Controller) rebalance() {
	if c.cfg.Replication <= 0 {
		return
	}
	c.mu.Lock()
	c.scanRepairsLocked()
	for len(c.repairs) < c.cfg.RepairConcurrency && len(c.repairQ) > 0 {
		t := c.repairQ[0]
		c.repairQ = c.repairQ[1:]
		if _, busy := c.repairs[t.slot]; busy {
			continue
		}
		c.repairs[t.slot] = t
	}
	tasks := make([]*repairTask, 0, len(c.repairs))
	for _, t := range c.repairs {
		tasks = append(tasks, t)
	}
	sort.Slice(tasks, func(i, j int) bool { return tasks[i].slot < tasks[j].slot })
	c.mu.Unlock()

	for _, t := range tasks {
		c.repairStep(t)
	}
}

// scanRepairsLocked enqueues one repair per under-replicated slot.
func (c *Controller) scanRepairsLocked() {
	now := c.cfg.Now()
	queued := map[string]bool{}
	for _, t := range c.repairQ {
		queued[t.slot] = true
	}
	for _, slot := range c.catalogSlotsLocked() {
		if c.rollout != nil && !c.rollout.terminal() && c.rollout.Slot == slot {
			continue // the rollout owns this slot
		}
		pl := c.placements[slot]
		if pl == nil {
			// A slot blessed before placement was enabled: assign now so it
			// gains owners and sheds its everywhere-copies via reconcile.
			pl = c.assignPlacementLocked(slot)
		}
		if queued[slot] || c.repairs[slot] != nil {
			continue
		}
		if bk := c.repairBk[slot]; bk != nil && now.Before(bk.openUntil) {
			continue
		}
		if c.availReplicasLocked(pl) >= c.repairWantLocked() {
			continue
		}
		target := c.repairTargetLocked(slot, pl)
		if target == "" {
			continue // nowhere to repair to; under_replicated stays raised
		}
		cat := c.catalog[slot]
		t := &repairTask{slot: slot, worker: target, src: cat.Src,
			fleetGen: cat.Gen, phase: repairDeploy, started: now}
		c.repairQ = append(c.repairQ, t)
		if c.met != nil {
			c.met.repairsStarted.Inc()
		}
		c.eventLocked(Event{Kind: EventRepair, Slot: slot, Worker: target,
			Detail: fmt.Sprintf("under-replicated (%d/%d avail) → repairing onto %s",
				c.availReplicasLocked(pl), c.repairWantLocked(), target)})
	}
}

// repairWantLocked is the effective replication target: R, capped by
// membership.
func (c *Controller) repairWantLocked() int {
	want := c.cfg.Replication
	if n := len(c.workers); want > n {
		want = n
	}
	return want
}

// repairTargetLocked walks the ring from hash(slot) and returns the first
// eligible worker that is not already a replica — the same walk that made
// the placement, so repaired placements stay ring-affine.
func (c *Controller) repairTargetLocked(slot string, pl *Placement) string {
	members := c.workerNamesLocked(func(*worker) bool { return true })
	r := buildRing(members, c.cfg.VNodes)
	for _, n := range r.lookup(slot, len(members)) {
		if containsStr(pl.Replicas, n) {
			continue
		}
		if c.workers[n].health.eligible() {
			return n
		}
	}
	return ""
}

func (c *Controller) catalogSlotsLocked() []string {
	slots := make([]string, 0, len(c.catalog))
	for n := range c.catalog {
		slots = append(slots, n)
	}
	sort.Strings(slots)
	return slots
}

// repairStep advances one active repair by a single action. Caller holds
// stepMu; RPCs run without mu.
func (c *Controller) repairStep(t *repairTask) {
	c.mu.Lock()
	now := c.cfg.Now()
	if now.Before(t.notBefore) {
		c.mu.Unlock()
		return
	}
	pl := c.placements[t.slot]
	cat := c.catalog[t.slot]
	w := c.workers[t.worker]
	switch {
	case cat == nil || cat.Gen != t.fleetGen:
		c.dropRepairLocked(t, "catalog moved on")
	case pl == nil:
		c.dropRepairLocked(t, "placement vanished")
	case c.rollout != nil && !c.rollout.terminal() && c.rollout.Slot == t.slot:
		c.dropRepairLocked(t, "rollout took the slot")
	case c.availReplicasLocked(pl) >= c.repairWantLocked():
		c.dropRepairLocked(t, "replicas recovered on their own")
	case w == nil || w.health == Down:
		c.failRepairLocked(t, "target went down")
	}
	dropped := c.repairs[t.slot] != t
	abortStaged := dropped && t.candGen != 0 && w != nil && w.health != Down
	phase := t.phase
	if !dropped {
		t.steps++
	}
	c.mu.Unlock()
	if dropped {
		if abortStaged {
			// Best effort: withdraw the candidate the dead repair staged.
			_, _ = c.rpc(t.worker, "abort "+t.slot, false)
		}
		return
	}

	switch phase {
	case repairDeploy:
		c.repairDeployStep(t)
	case repairCanary:
		c.repairCanaryStep(t)
	case repairPromote:
		c.repairPromoteStep(t)
	}
}

func (c *Controller) repairDeployStep(t *repairTask) {
	lines, err := c.rpc(t.worker, "deploy "+t.slot+" "+t.src, false)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		c.retryRepairLocked(t, "deploy: "+err.Error())
		return
	}
	rep, ok := parseDeployReply(lines)
	if !ok {
		c.failRepairLocked(t, "deploy refused: "+lastLine(lines))
		return
	}
	if rep.candGen == 0 {
		// No incumbent on the target: the blessed version bootstrapped
		// straight to live, the same trust reconcile extends when pushing
		// the catalog at an empty worker.
		c.completeRepairLocked(t, rep.liveGen, false)
		return
	}
	t.candGen, t.prevLive = rep.candGen, rep.liveGen
	t.canary = 0
	t.phase = repairCanary
}

func (c *Controller) repairCanaryStep(t *repairTask) {
	c.mu.Lock()
	batch := c.cfg.TrafficBatch
	c.mu.Unlock()
	if _, err := c.rpc(t.worker, "traffic "+t.slot+" "+strconv.Itoa(batch), false); err != nil {
		c.mu.Lock()
		c.retryRepairLocked(t, "canary feed: "+err.Error())
		c.mu.Unlock()
		return
	}
	_, _ = c.rpc(t.worker, "tick", false)
	lines, err := c.rpc(t.worker, "status", true)
	if err != nil {
		c.mu.Lock()
		c.retryRepairLocked(t, "status: "+err.Error())
		c.mu.Unlock()
		return
	}
	var st lifecycle.SlotStatus
	found := false
	for _, l := range lines {
		if s, perr := lifecycle.ParseSlotStatus(l); perr == nil && s.Slot == t.slot {
			st, found = s, true
			break
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	switch {
	case !found:
		c.failRepairLocked(t, "slot vanished from target during canary")
	case st.Stage == lifecycle.StageQuarantined:
		c.failRepairLocked(t, "target quarantined the blessed version")
	case st.CandidateGeneration == 0 && st.LiveGeneration >= t.candGen:
		// A lost promote reply from a previous step: it landed.
		c.completeRepairLocked(t, st.LiveGeneration, true)
	case st.CandidateGeneration == 0:
		// The divergence gate rejected the blessed version on this target —
		// its incumbent genuinely disagrees. Never force; abandon.
		c.failRepairLocked(t, "canary gate rejected the blessed version")
	case st.CandidateGeneration != t.candGen:
		t.candGen = st.CandidateGeneration
	case st.Cleared:
		t.phase = repairPromote
	default:
		t.canary++
		if t.canary > c.cfg.MaxCanarySteps {
			c.failRepairLocked(t, "canary stalled")
		}
	}
}

func (c *Controller) repairPromoteStep(t *repairTask) {
	lines, err := c.rpc(t.worker, "promote "+t.slot, false)
	c.mu.Lock()
	defer c.mu.Unlock()
	if err != nil {
		// Ambiguous: the promote may or may not have landed. The canary
		// judge resolves it from status next step.
		t.phase = repairCanary
		t.fails++
		if t.fails > c.cfg.RepairMaxFails {
			c.failRepairLocked(t, "promote: "+err.Error())
		}
		return
	}
	if last, ok := ReplyOK(lines); ok {
		c.completeRepairLocked(t, parseLiveGen(last), true)
		return
	}
	t.phase = repairCanary
}

// completeRepairLocked lands a finished repair: record the install, swap the
// repaired-away replica out of the placement, reset the slot's breaker. If
// every original replica recovered while the repair ran, the new copy is
// surplus — the placement stays put and the target is demoted to Recovering
// so the next reconcile drains the extra copy.
func (c *Controller) completeRepairLocked(t *repairTask, liveGen int, gated bool) {
	delete(c.repairs, t.slot)
	delete(c.repairBk, t.slot)
	c.setInstalledLocked(t.worker, t.slot, t.fleetGen, liveGen, true)

	pl := c.placements[t.slot]
	removed := ""
	var reps []string
	for _, rn := range pl.Replicas {
		w := c.workers[rn]
		avail := w != nil && (w.health.eligible() || w.health == Recovering)
		if removed == "" && !avail {
			removed = rn
			continue
		}
		reps = append(reps, rn)
	}
	mode := "bootstrap"
	if gated {
		mode = "gated"
	}
	if removed == "" && len(pl.Replicas) < c.repairWantLocked() {
		// Nobody to swap out — the placement is short (a departed worker was
		// scrubbed from it); the new copy grows it back toward R.
		reps = append(reps, t.worker)
		c.setPlacementLocked(t.slot, reps,
			fmt.Sprintf("re-replicated onto %s (%s)", t.worker, mode))
		c.eventLocked(Event{Kind: EventRepair, Slot: t.slot, Worker: t.worker,
			Detail: fmt.Sprintf("re-replicated onto %s (%s, live=gen%d, %d steps)",
				t.worker, mode, liveGen, t.steps)})
	} else if removed == "" {
		if w := c.workers[t.worker]; w != nil && w.health == Healthy {
			c.setHealthLocked(w, Recovering, "surplus repair copy awaiting drain")
		}
		c.eventLocked(Event{Kind: EventRepair, Slot: t.slot, Worker: t.worker,
			Detail: fmt.Sprintf("repair (%s) finished but all replicas recovered; %s will drain", mode, t.worker)})
	} else {
		reps = append(reps, t.worker)
		c.setPlacementLocked(t.slot, reps,
			fmt.Sprintf("repaired: %s → %s (%s)", removed, t.worker, mode))
		c.eventLocked(Event{Kind: EventRepair, Slot: t.slot, Worker: t.worker,
			Detail: fmt.Sprintf("re-replicated onto %s (%s, live=gen%d, %d steps)",
				t.worker, mode, liveGen, t.steps)})
	}
	if c.met != nil {
		c.met.repairCompleted(mode)
		c.met.repairSteps.Observe(uint64(t.steps))
		if d := c.cfg.Now().Sub(t.started); d > 0 {
			c.met.repairMillis.Observe(uint64(d.Milliseconds()))
		}
	}
	c.gaugesLocked()
}

// retryRepairLocked backs the task off with doubling jitter; too many
// retries abandon it.
func (c *Controller) retryRepairLocked(t *repairTask, why string) {
	t.fails++
	if t.fails > c.cfg.RepairMaxFails {
		c.failRepairLocked(t, why)
		return
	}
	d := c.cfg.RepairBackoff << (t.fails - 1)
	if d > c.cfg.RepairBackoffMax {
		d = c.cfg.RepairBackoffMax
	}
	t.notBefore = c.cfg.Now().Add(c.jitterLocked(d))
}

// failRepairLocked abandons the task and advances the slot's repair breaker.
// The scan re-enqueues a fresh repair (possibly onto a different target)
// once the breaker allows.
func (c *Controller) failRepairLocked(t *repairTask, why string) {
	delete(c.repairs, t.slot)
	if c.met != nil {
		c.met.repairsFailed.Inc()
	}
	bk := c.repairBk[t.slot]
	if bk == nil {
		bk = &repairBreaker{}
		c.repairBk[t.slot] = bk
	}
	bk.fails++
	c.eventLocked(Event{Kind: EventRepair, Slot: t.slot, Worker: t.worker,
		Detail: fmt.Sprintf("repair abandoned: %s (consecutive failures %d)", why, bk.fails)})
	if bk.fails >= c.cfg.RepairBreakerAfter {
		if bk.cooldown == 0 {
			bk.cooldown = c.cfg.RepairBackoff * 4
		} else {
			bk.cooldown *= 2
		}
		if bk.cooldown > c.cfg.RepairBackoffMax {
			bk.cooldown = c.cfg.RepairBackoffMax
		}
		bk.openUntil = c.cfg.Now().Add(c.jitterLocked(bk.cooldown))
		if c.met != nil {
			c.met.repairBreakerOpens.Inc()
		}
		c.eventLocked(Event{Kind: EventRepair, Slot: t.slot,
			Detail: fmt.Sprintf("repair breaker open for %s", bk.cooldown)})
	}
}

// dropRepairLocked discards a task that is no longer needed or valid; not a
// failure, so the breaker is untouched.
func (c *Controller) dropRepairLocked(t *repairTask, why string) {
	if c.repairs[t.slot] == t {
		delete(c.repairs, t.slot)
	}
	c.eventLocked(Event{Kind: EventRepair, Slot: t.slot, Worker: t.worker,
		Detail: "repair dropped: " + why})
}

// cancelRepairsForSlotLocked drops queued and active repairs for a slot — a
// new rollout owns it now.
func (c *Controller) cancelRepairsForSlotLocked(slot, why string) {
	if t := c.repairs[slot]; t != nil {
		c.dropRepairLocked(t, why)
	}
	keep := c.repairQ[:0]
	for _, t := range c.repairQ {
		if t.slot != slot {
			keep = append(keep, t)
		}
	}
	c.repairQ = keep
}

// dropRepairsForWorkerLocked drops repairs targeting a departed worker.
func (c *Controller) dropRepairsForWorkerLocked(name string) {
	for slot, t := range c.repairs {
		if t.worker == name {
			delete(c.repairs, slot)
		}
	}
	keep := c.repairQ[:0]
	for _, t := range c.repairQ {
		if t.worker != name {
			keep = append(keep, t)
		}
	}
	c.repairQ = keep
}
