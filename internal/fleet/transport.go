package fleet

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"sync"
	"time"

	"merlin/internal/chaos"
)

// Transport carries one line-protocol RPC to a worker merlind and returns
// every response line up to and including the terminating "ok ..." or
// "err ..." line. The returned error covers transport-level failures only
// (dial, deadline, torn stream); an application-level failure is a normal
// reply whose last line starts with "err " — the distinction matters because
// only transport failures feed the circuit breaker and health machine.
//
// The controller performs every worker interaction through this interface,
// so tests and soaks swap in LocalTransport (in-process workers) and
// WithChaos (injected network faults) without a socket in sight.
type Transport interface {
	RPC(ctx context.Context, addr, line string) ([]string, error)
}

// ReplyOK returns the terminating line when the reply reports success.
func ReplyOK(lines []string) (string, bool) {
	if len(lines) == 0 {
		return "", false
	}
	last := lines[len(lines)-1]
	if last == "ok" || strings.HasPrefix(last, "ok ") {
		return last, true
	}
	return "", false
}

// ReplyErr returns the terminating error line when the reply reports an
// application-level failure.
func ReplyErr(lines []string) (string, bool) {
	if len(lines) == 0 {
		return "", false
	}
	last := lines[len(lines)-1]
	if strings.HasPrefix(last, "err ") {
		return last, true
	}
	return "", false
}

// isTerminator reports whether a response line ends an RPC.
func isTerminator(line string) bool {
	return line == "ok" || strings.HasPrefix(line, "ok ") || strings.HasPrefix(line, "err ")
}

// TCP is the production transport: one connection per RPC over the worker's
// control listener, with the context deadline applied to the whole exchange.
// One-connection-per-RPC trades a little latency for a lot of partition
// tolerance — there is no persistent connection to wedge half-open, and a
// worker restart invalidates nothing.
type TCP struct {
	// Dialer's Timeout bounds connection establishment on top of the
	// context deadline.
	Dialer net.Dialer
}

func (t *TCP) RPC(ctx context.Context, addr, line string) ([]string, error) {
	conn, err := t.Dialer.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	defer conn.Close()
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	if _, err := fmt.Fprintf(conn, "%s\n", line); err != nil {
		return nil, err
	}
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var lines []string
	for sc.Scan() {
		l := sc.Text()
		lines = append(lines, l)
		if isTerminator(l) {
			return lines, nil
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return nil, errors.New("fleet: connection closed mid-reply")
}

// ---- chaos interposition -------------------------------------------------

// ChaosTransport wraps a Transport and applies a chaos.NetPlan's faults to
// every RPC: dropped connections fail before the worker sees the request,
// one-way partitions and resets execute the request but lose the reply
// (side effects land, the caller cannot tell), duplication executes it
// twice, delays stall it. Deterministic given a deterministic plan and call
// order.
type ChaosTransport struct {
	Inner Transport
	Plan  chaos.NetPlan
	// Delay is the NetDelay stall (default 2ms).
	Delay time.Duration

	mu    sync.Mutex
	stats chaos.NetStats
}

// WithChaos interposes plan between the controller and inner.
func WithChaos(inner Transport, plan chaos.NetPlan) *ChaosTransport {
	return &ChaosTransport{
		Inner: inner, Plan: plan, Delay: 2 * time.Millisecond,
	}
}

// Stats returns a copy of the fault accounting so far.
func (t *ChaosTransport) Stats() chaos.NetStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	st := t.stats
	st.Faults = map[chaos.NetFault]int{}
	for k, v := range t.stats.Faults {
		st.Faults[k] = v
	}
	return st
}

func (t *ChaosTransport) record(f chaos.NetFault) {
	t.mu.Lock()
	t.stats.RPCs++
	if f != chaos.NetNone {
		if t.stats.Faults == nil {
			t.stats.Faults = map[chaos.NetFault]int{}
		}
		t.stats.Faults[f]++
	}
	t.mu.Unlock()
}

// errPartition marks reply-lost faults; the controller sees an opaque
// transport error, tests can errors.Is for it.
var errPartition = errors.New("reply lost")

func (t *ChaosTransport) RPC(ctx context.Context, addr, line string) ([]string, error) {
	verb, _, _ := strings.Cut(line, " ")
	f := t.Plan.NextNet(addr, verb)
	t.record(f)
	switch f {
	case chaos.NetDrop:
		return nil, fmt.Errorf("chaos: connection to %s dropped", addr)
	case chaos.NetDelay:
		d := t.Delay
		if d <= 0 {
			d = 2 * time.Millisecond
		}
		select {
		case <-time.After(d):
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		return t.Inner.RPC(ctx, addr, line)
	case chaos.NetDup:
		// Both deliveries take effect; the caller sees the second reply —
		// exactly what a retransmitted request does to a non-idempotent
		// endpoint.
		if _, err := t.Inner.RPC(ctx, addr, line); err != nil {
			return nil, err
		}
		return t.Inner.RPC(ctx, addr, line)
	case chaos.NetOneWay:
		_, _ = t.Inner.RPC(ctx, addr, line)
		return nil, fmt.Errorf("chaos: %s deadline exceeded: %w", addr, errPartition)
	case chaos.NetReset:
		_, _ = t.Inner.RPC(ctx, addr, line)
		return nil, fmt.Errorf("chaos: connection to %s reset mid-reply: %w", addr, errPartition)
	}
	return t.Inner.RPC(ctx, addr, line)
}
