package fleet

import (
	"sort"
)

// The consistent-hash ring that spreads slot traffic across workers. Each
// eligible worker contributes vnodes points on a uint64 ring (hash of
// "name#i"); a routing key maps to the first point clockwise from its own
// hash. When a worker goes down its points vanish and only the keys it owned
// move — the property that makes re-routing under failure cheap and
// deterministic instead of a full reshuffle.

type ringPoint struct {
	h uint64
	w string
}

type ring struct {
	points []ringPoint
}

// fnv64a hashes a string without allocating. Raw FNV-1a clusters badly for
// short, similar strings ("w1#0" vs "w2#0"), which skews ring ownership, so
// the output is finalized through a splitmix-style mix for avalanche.
func fnv64a(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
	h = (h ^ (h >> 27)) * 0x94d049bb133111eb
	return h ^ (h >> 31)
}

// buildRing places vnodes points per worker.
func buildRing(workers []string, vnodes int) *ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &ring{points: make([]ringPoint, 0, len(workers)*vnodes)}
	for _, w := range workers {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{fnv64a(w + "#" + itoa(i)), w})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		a, b := r.points[i], r.points[j]
		if a.h != b.h {
			return a.h < b.h
		}
		return a.w < b.w // deterministic tie-break on hash collisions
	})
	return r
}

// itoa avoids strconv in the hot ring-build path.
func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

// lookup returns up to max distinct workers for key, in ring order starting
// at the key's successor point. The first entry is the key's owner; the rest
// are the failover order when the owner cannot serve.
func (r *ring) lookup(key string, max int) []string {
	if len(r.points) == 0 || max <= 0 {
		return nil
	}
	h := fnv64a(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].h >= h })
	out := make([]string, 0, max)
	seen := map[string]bool{}
	for i := 0; i < len(r.points) && len(out) < max; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.w] {
			seen[p.w] = true
			out = append(out, p.w)
		}
	}
	return out
}
