package fleet

import (
	"crypto/subtle"
	"strings"
)

// Control-plane auth: a shared secret rides on every control RPC as an
// "auth <token> <cmd>" prefix. Verification is constant-time so the token
// cannot be recovered byte-by-byte through timing, and refusals are uniform
// ("err unauthorized") so probes learn nothing about which part failed.
// This is the ROADMAP "TLS/auth" first step: it authenticates, it does not
// encrypt — run the control listener on a trusted network.

// AuthLine prefixes line with the auth header. No-op for an empty token.
func AuthLine(token, line string) string {
	if token == "" {
		return line
	}
	return "auth " + token + " " + line
}

// CheckAuth validates an incoming control line against the listener's token
// and strips the header, returning the bare command. A listener with no
// token accepts everything (and tolerates a header from a token-bearing
// peer, so mixed fleets keep working during a rolling token rollout); a
// listener with a token refuses any line whose header is missing or wrong.
func CheckAuth(token, line string) (string, bool) {
	verb, rest, _ := strings.Cut(line, " ")
	if verb == "auth" {
		tok, cmd, ok := strings.Cut(rest, " ")
		if !ok || cmd == "" {
			return "", false
		}
		if token == "" {
			return cmd, true
		}
		if subtle.ConstantTimeCompare([]byte(tok), []byte(token)) == 1 {
			return cmd, true
		}
		return "", false
	}
	if token == "" {
		return line, true
	}
	return "", false
}
