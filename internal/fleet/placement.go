package fleet

import (
	"fmt"
	"sort"
	"strings"
)

// Placement is one slot's replica assignment: the R distinct workers chosen
// by successor-walk on the consistent-hash ring, in walk order. It is
// journaled (recPlacement) so a SIGKILLed controller recovers exact
// ownership, and Ver increments on every change so journal replay is
// latest-wins and status output shows churn.
type Placement struct {
	Slot     string   `json:"slot"`
	Replicas []string `json:"replicas"`
	Ver      int      `json:"ver"`
	// Gone marks a journaled tombstone: the placement was withdrawn (its
	// bootstrap rollout failed before blessing the slot). Never set on an
	// in-memory placement.
	Gone bool `json:"gone,omitempty"`
}

// replicasLocked returns a copy of the slot's replica set, or nil when the
// slot is unplaced (legacy mirror mode, or a slot from before placement was
// enabled) — nil means "every worker".
func (c *Controller) replicasLocked(slot string) []string {
	pl := c.placements[slot]
	if pl == nil {
		return nil
	}
	return append([]string(nil), pl.Replicas...)
}

// placedLocked reports whether the worker should hold the slot. Unplaced
// slots live everywhere.
func (c *Controller) placedLocked(slot, worker string) bool {
	pl := c.placements[slot]
	if pl == nil {
		return true
	}
	return containsStr(pl.Replicas, worker)
}

// assignPlacementLocked picks the slot's initial replicas: walk the ring of
// ALL members from hash(slot) and take the first R distinct workers,
// preferring eligible ones but falling back to down members rather than
// under-assigning — a down replica is repaired or reconciled later, an
// unassigned one is forgotten. Journals and returns the placement.
func (c *Controller) assignPlacementLocked(slot string) *Placement {
	members := c.workerNamesLocked(func(*worker) bool { return true })
	r := buildRing(members, c.cfg.VNodes)
	walk := r.lookup(slot, len(members))
	want := c.cfg.Replication
	if want > len(members) {
		want = len(members)
	}
	var replicas []string
	for _, n := range walk {
		if len(replicas) == want {
			break
		}
		if c.workers[n].health.eligible() {
			replicas = append(replicas, n)
		}
	}
	for _, n := range walk {
		if len(replicas) == want {
			break
		}
		if !containsStr(replicas, n) {
			replicas = append(replicas, n)
		}
	}
	c.setPlacementLocked(slot, replicas, "assigned by ring walk")
	return c.placements[slot]
}

// setPlacementLocked installs and journals a new replica set for the slot.
func (c *Controller) setPlacementLocked(slot string, replicas []string, why string) {
	pl := c.placements[slot]
	ver := 1
	if pl != nil {
		ver = pl.Ver + 1
	}
	np := &Placement{Slot: slot, Replicas: append([]string(nil), replicas...), Ver: ver}
	c.placements[slot] = np
	cp := *np
	cp.Replicas = append([]string(nil), np.Replicas...)
	c.journalLocked(record{Kind: recPlacement, Placement: &cp}, true)
	c.eventLocked(Event{Kind: EventPlacement, Slot: slot,
		Detail: fmt.Sprintf("ver %d → [%s]: %s", ver, strings.Join(replicas, ","), why)})
}

// dropPlacementLocked withdraws a slot's placement entirely, journaling a
// tombstone so recovery does not resurrect it.
func (c *Controller) dropPlacementLocked(slot, why string) {
	if c.placements[slot] == nil {
		return
	}
	delete(c.placements, slot)
	c.journalLocked(record{Kind: recPlacement,
		Placement: &Placement{Slot: slot, Gone: true}}, true)
	c.eventLocked(Event{Kind: EventPlacement, Slot: slot, Detail: "placement withdrawn: " + why})
}

// placementSlotsLocked returns the placed slot names, sorted.
func (c *Controller) placementSlotsLocked() []string {
	slots := make([]string, 0, len(c.placements))
	for n := range c.placements {
		slots = append(slots, n)
	}
	sort.Strings(slots)
	return slots
}

// liveReplicasLocked counts the placement's currently-routable replicas.
func (c *Controller) liveReplicasLocked(pl *Placement) int {
	live := 0
	for _, rn := range pl.Replicas {
		if w := c.workers[rn]; w != nil && w.health.eligible() {
			live++
		}
	}
	return live
}

// availReplicasLocked counts replicas that are routable or on their way back
// (Recovering): the rebalancer only repairs when fewer than R replicas are
// even plausibly alive, so a worker mid-reconcile does not trigger a churny
// re-replication.
func (c *Controller) availReplicasLocked(pl *Placement) int {
	avail := 0
	for _, rn := range pl.Replicas {
		w := c.workers[rn]
		if w == nil {
			continue
		}
		if w.health.eligible() || w.health == Recovering {
			avail++
		}
	}
	return avail
}

// Placements returns slot → replica set (copies). Empty in mirror mode.
func (c *Controller) Placements() map[string][]string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string][]string, len(c.placements))
	for n, pl := range c.placements {
		out[n] = append([]string(nil), pl.Replicas...)
	}
	return out
}

func containsStr(xs []string, s string) bool {
	for _, x := range xs {
		if x == s {
			return true
		}
	}
	return false
}

func withoutStr(xs []string, s string) []string {
	out := make([]string, 0, len(xs))
	for _, x := range xs {
		if x != s {
			out = append(out, x)
		}
	}
	return out
}
