package fleet

import (
	"merlin/internal/metrics"
)

// fleetMetrics holds the controller's registry handles. All families are
// registered up front so a scrape sees zeros rather than absent series.
type fleetMetrics struct {
	workersState map[Health]*metrics.Gauge
	degraded     *metrics.Gauge

	rpcs        *metrics.Counter
	rpcFailures *metrics.Counter
	retries     *metrics.Counter
	breakerFast *metrics.Counter
	probes      *metrics.Counter

	trafficSent *metrics.Counter
	reroutes    *metrics.Counter
	lastResort  *metrics.Counter
	dropped     *metrics.Counter

	rolloutsStarted   *metrics.Counter
	rolloutsCompleted *metrics.Counter
	rolloutsFailed    *metrics.Counter

	reconciles      *metrics.Counter
	journalFailures *metrics.Counter
}

func newFleetMetrics(r *metrics.Registry) *fleetMetrics {
	if r == nil {
		return nil
	}
	fm := &fleetMetrics{workersState: map[Health]*metrics.Gauge{}}
	for _, h := range healthNames {
		fm.workersState[h] = r.Gauge("merlin_fleet_workers",
			"workers by health state", "state", h.String())
	}
	fm.degraded = r.Gauge("merlin_fleet_degraded",
		"1 when any joined worker is not routable (down or recovering)")
	fm.rpcs = r.Counter("merlin_fleet_rpcs_total", "worker RPC attempts")
	fm.rpcFailures = r.Counter("merlin_fleet_rpc_failures_total",
		"worker RPC transport failures")
	fm.retries = r.Counter("merlin_fleet_rpc_retries_total",
		"read RPC retry attempts after a transport failure")
	fm.breakerFast = r.Counter("merlin_fleet_breaker_fastfails_total",
		"RPCs rejected locally by an open circuit breaker")
	fm.probes = r.Counter("merlin_fleet_probes_total",
		"half-open probes sent to down workers")
	fm.trafficSent = r.Counter("merlin_fleet_traffic_sent_total",
		"packets fanned out to workers")
	fm.reroutes = r.Counter("merlin_fleet_reroutes_total",
		"traffic chunks rerouted to a failover worker")
	fm.lastResort = r.Counter("merlin_fleet_traffic_last_resort_total",
		"traffic chunks salvaged by trying breaker-open workers")
	fm.dropped = r.Counter("merlin_fleet_dropped_packets_total",
		"packets dropped because every candidate worker failed")
	fm.rolloutsStarted = r.Counter("merlin_fleet_rollouts_started_total",
		"fleet rollouts begun")
	fm.rolloutsCompleted = r.Counter("merlin_fleet_rollouts_completed_total",
		"fleet rollouts promoted on every worker")
	fm.rolloutsFailed = r.Counter("merlin_fleet_rollouts_rolled_back_total",
		"fleet rollouts halted and rolled back")
	fm.reconciles = r.Counter("merlin_fleet_reconciles_total",
		"worker reconcile passes against the fleet catalog")
	fm.journalFailures = r.Counter("merlin_fleet_journal_failures_total",
		"controller journal append/compact failures")
	return fm
}

// gaugesLocked republishes the per-state worker gauges and the degraded flag.
func (c *Controller) gaugesLocked() {
	if c.met == nil {
		return
	}
	counts := map[Health]int64{}
	degraded := int64(0)
	for _, w := range c.workers {
		counts[w.health]++
		if !w.health.eligible() {
			degraded = 1
		}
	}
	for _, h := range healthNames {
		c.met.workersState[h].Set(counts[h])
	}
	c.met.degraded.Set(degraded)
}
