package fleet

import (
	"merlin/internal/metrics"
)

// fleetMetrics holds the controller's registry handles. All families are
// registered up front so a scrape sees zeros rather than absent series.
type fleetMetrics struct {
	workersState map[Health]*metrics.Gauge
	degraded     *metrics.Gauge

	rpcs        *metrics.Counter
	rpcFailures *metrics.Counter
	retries     *metrics.Counter
	breakerFast *metrics.Counter
	probes      *metrics.Counter

	trafficSent *metrics.Counter
	reroutes    *metrics.Counter
	lastResort  *metrics.Counter
	dropped     *metrics.Counter

	rolloutsStarted   *metrics.Counter
	rolloutsCompleted *metrics.Counter
	rolloutsFailed    *metrics.Counter

	reconciles      *metrics.Counter
	journalFailures *metrics.Counter

	// Placement / repair telemetry (R > 0 only, but always registered).
	reg                *metrics.Registry // for lazy per-slot replica gauges
	replicaGauges      map[string]*metrics.Gauge
	underReplicated    *metrics.Gauge
	failovers          *metrics.Counter
	drains             *metrics.Counter
	repairsStarted     *metrics.Counter
	repairsFailed      *metrics.Counter
	repairsGated       *metrics.Counter
	repairsBootstrap   *metrics.Counter
	repairBreakerOpens *metrics.Counter
	repairSteps        *metrics.Histogram
	repairMillis       *metrics.Histogram

	statusPolls *metrics.Counter
	statusSkips *metrics.Counter

	// Superopt cache federation.
	cacheSyncs     *metrics.Counter
	cachePulled    *metrics.Counter
	cachePushed    *metrics.Counter
	cacheConflicts *metrics.Counter
	cacheSkips     *metrics.Counter
	cacheUnion     *metrics.Gauge
}

func newFleetMetrics(r *metrics.Registry) *fleetMetrics {
	if r == nil {
		return nil
	}
	fm := &fleetMetrics{workersState: map[Health]*metrics.Gauge{}}
	for _, h := range healthNames {
		fm.workersState[h] = r.Gauge("merlin_fleet_workers",
			"workers by health state", "state", h.String())
	}
	fm.degraded = r.Gauge("merlin_fleet_degraded",
		"1 when any joined worker is not routable (down or recovering)")
	fm.rpcs = r.Counter("merlin_fleet_rpcs_total", "worker RPC attempts")
	fm.rpcFailures = r.Counter("merlin_fleet_rpc_failures_total",
		"worker RPC transport failures")
	fm.retries = r.Counter("merlin_fleet_rpc_retries_total",
		"read RPC retry attempts after a transport failure")
	fm.breakerFast = r.Counter("merlin_fleet_breaker_fastfails_total",
		"RPCs rejected locally by an open circuit breaker")
	fm.probes = r.Counter("merlin_fleet_probes_total",
		"half-open probes sent to down workers")
	fm.trafficSent = r.Counter("merlin_fleet_traffic_sent_total",
		"packets fanned out to workers")
	fm.reroutes = r.Counter("merlin_fleet_reroutes_total",
		"traffic chunks rerouted to a failover worker")
	fm.lastResort = r.Counter("merlin_fleet_traffic_last_resort_total",
		"traffic chunks salvaged by trying breaker-open workers")
	fm.dropped = r.Counter("merlin_fleet_dropped_packets_total",
		"packets dropped because every candidate worker failed")
	fm.rolloutsStarted = r.Counter("merlin_fleet_rollouts_started_total",
		"fleet rollouts begun")
	fm.rolloutsCompleted = r.Counter("merlin_fleet_rollouts_completed_total",
		"fleet rollouts promoted on every worker")
	fm.rolloutsFailed = r.Counter("merlin_fleet_rollouts_rolled_back_total",
		"fleet rollouts halted and rolled back")
	fm.reconciles = r.Counter("merlin_fleet_reconciles_total",
		"worker reconcile passes against the fleet catalog")
	fm.journalFailures = r.Counter("merlin_fleet_journal_failures_total",
		"controller journal append/compact failures")
	fm.reg = r
	fm.replicaGauges = map[string]*metrics.Gauge{}
	fm.underReplicated = r.Gauge("merlin_fleet_under_replicated",
		"slots with fewer routable replicas than the replication target")
	fm.failovers = r.Counter("merlin_fleet_failovers_total",
		"traffic chunks served by a non-primary replica of their slot")
	fm.drains = r.Counter("merlin_fleet_drains_total",
		"stale slot copies drained off workers that lost the placement")
	fm.repairsStarted = r.Counter("merlin_fleet_repairs_started_total",
		"re-replication repairs enqueued for under-replicated slots")
	fm.repairsFailed = r.Counter("merlin_fleet_repairs_failed_total",
		"repairs abandoned after retries, gate refusal, or target loss")
	fm.repairsGated = r.Counter("merlin_fleet_repairs_completed_total",
		"re-replication repairs finished", "mode", "gated")
	fm.repairsBootstrap = r.Counter("merlin_fleet_repairs_completed_total",
		"re-replication repairs finished", "mode", "bootstrap")
	fm.repairBreakerOpens = r.Counter("merlin_fleet_repair_breaker_opens_total",
		"per-slot repair circuit breaker openings")
	fm.repairSteps = r.Histogram("merlin_fleet_repair_steps",
		"steps per completed repair")
	fm.repairMillis = r.Histogram("merlin_fleet_repair_wall_ms",
		"wall-clock milliseconds per completed repair")
	fm.statusPolls = r.Counter("merlin_fleet_status_polls_total",
		"full status polls issued while judging canary candidates")
	fm.statusSkips = r.Counter("merlin_fleet_status_skips_total",
		"status polls skipped because the event watermark was unchanged")
	fm.cacheSyncs = r.Counter("merlin_fleet_cache_syncs_total",
		"superopt cache federation rounds run")
	fm.cachePulled = r.Counter("merlin_fleet_cache_entries_pulled_total",
		"verdict entries pulled from worker cache deltas")
	fm.cachePushed = r.Counter("merlin_fleet_cache_entries_pushed_total",
		"union verdict entries pushed back to workers")
	fm.cacheConflicts = r.Counter("merlin_fleet_cache_conflicts_total",
		"federation merges aborted by conflicting verdicts")
	fm.cacheSkips = r.Counter("merlin_fleet_cache_sync_skips_total",
		"workers skipped during a federation round (unreachable or no cache)")
	fm.cacheUnion = r.Gauge("merlin_fleet_cache_union_size",
		"verdict entries in the controller's merged federation cache")
	return fm
}

// repairCompleted bumps the mode-labeled completion counter.
func (fm *fleetMetrics) repairCompleted(mode string) {
	if mode == "gated" {
		fm.repairsGated.Inc()
	} else {
		fm.repairsBootstrap.Inc()
	}
}

// gaugesLocked republishes the per-state worker gauges and the degraded flag.
func (c *Controller) gaugesLocked() {
	if c.met == nil {
		return
	}
	counts := map[Health]int64{}
	degraded := int64(0)
	for _, w := range c.workers {
		counts[w.health]++
		if !w.health.eligible() {
			degraded = 1
		}
	}
	for _, h := range healthNames {
		c.met.workersState[h].Set(counts[h])
	}
	c.met.degraded.Set(degraded)

	// Placement gauges: live replicas per slot and the under-replicated
	// count. Cheap (slots × R) and always fresh — this runs after every RPC.
	under := int64(0)
	want := c.repairWantLocked()
	for _, slot := range c.placementSlotsLocked() {
		pl := c.placements[slot]
		live := c.liveReplicasLocked(pl)
		g := c.met.replicaGauges[slot]
		if g == nil {
			g = c.met.reg.Gauge("merlin_fleet_replicas",
				"routable replicas per slot", "slot", slot)
			c.met.replicaGauges[slot] = g
		}
		g.Set(int64(live))
		if live < want {
			under++
		}
	}
	c.met.underReplicated.Set(under)
}
