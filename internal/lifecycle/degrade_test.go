package lifecycle

import (
	"strings"
	"testing"
	"time"

	"merlin/internal/chaos"
	"merlin/internal/journal"
	"merlin/internal/metrics"
)

// fakeClock is an injectable Config.Now the degradation tests advance by
// hand to step through the reattach backoff without sleeping.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) advance(d time.Duration) { c.now = c.now.Add(d) }

// writeFaultPlan fails every data write and nothing else — a disk that
// mounts and lists fine but cannot persist a byte.
type writeFaultPlan struct{}

func (writeFaultPlan) Next(op chaos.Op, name string) chaos.Fault {
	if op == chaos.OpWrite {
		return chaos.EIO
	}
	return chaos.None
}

func sumOps(m map[chaos.Op]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// openChaosJournal opens a journal whose every file op goes through the
// given plan.
func openChaosJournal(t *testing.T, dir string, plan chaos.Plan) (*journal.Log, *chaos.Injector) {
	t.Helper()
	inj := chaos.Wrap(chaos.OS(), plan)
	inj.SlowDelay = 0
	jl, err := journal.OpenWith(dir, journal.Options{FS: inj})
	if err != nil {
		t.Fatalf("journal.OpenWith: %v", err)
	}
	return jl, inj
}

// TestJournalDegradesAndServes: persistent write failures detach the journal
// after the configured threshold, the slot never stops serving, the degraded
// gauge goes to 1, and a later healthy disk re-attaches with a recovery
// marker plus re-journaled state that a fresh Recover reads back.
func TestJournalDegradesAndServes(t *testing.T) {
	dir := t.TempDir()
	// The first journal write (the initial deploy) lands; the next 40 fail —
	// enough to blow the degrade threshold and eat a run of probe attempts —
	// then the "disk" heals as the schedule drains.
	steps := []chaos.Step{{Op: chaos.OpWrite, Skip: 1, Fault: chaos.EIO}}
	for i := 0; i < 39; i++ {
		steps = append(steps, chaos.Step{Op: chaos.OpWrite, Fault: chaos.EIO})
	}
	jl, _ := openChaosJournal(t, dir, chaos.NewSchedule(steps...))
	defer jl.Close()

	clk := &fakeClock{now: time.Unix(1000, 0)}
	reg := metrics.New()
	m := NewManager(Config{
		Journal:             jl,
		Metrics:             reg,
		Now:                 clk.Now,
		JournalDegradeAfter: 2,
		JournalRetryBase:    time.Second,
	})
	if err := m.Deploy("s", progSource(countProg("v1"), nil)); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 3)

	// Force journaled transitions while the disk is failing: deploys append
	// with sync and will fail.
	for i := 0; i < 4; i++ {
		_ = m.Deploy("s", progSource(countProg("vX"), nil))
	}
	h := m.JournalHealth()
	if !h.Degraded {
		t.Fatalf("journal not degraded after persistent failures: %+v (stats %+v)", h, jl.Stats())
	}
	if _, ok := findLastEvent(m.Events("s"), EventJournalDegraded); !ok {
		t.Fatalf("no journal-degraded event: %v", m.Events("s"))
	}
	m.CollectMetrics()
	if !strings.Contains(reg.Text(), "merlin_journal_degraded 1") {
		t.Fatal("merlin_journal_degraded gauge not raised")
	}

	// Serving must be unaffected throughout the outage.
	serveClean(t, m, "s", 5)

	// Too early: the backoff holds the probe back.
	m.Tick()
	if h := m.JournalHealth(); !h.Degraded {
		t.Fatal("probe fired before the backoff expired")
	}

	// After the backoff, with the fault schedule drained, a probe re-attaches.
	clk.advance(2 * time.Second)
	deadline := time.Now().Add(time.Second)
	for m.JournalHealth().Degraded {
		m.Tick()
		clk.advance(2 * time.Minute) // beyond any capped backoff
		if time.Now().After(deadline) {
			t.Fatalf("journal never re-attached: %+v", m.JournalHealth())
		}
	}
	if _, ok := findLastEvent(m.Events("s"), EventJournalReattached); !ok {
		t.Fatalf("no journal-reattached event: %v", m.Events("s"))
	}
	m.CollectMetrics()
	dump := reg.Text()
	if !strings.Contains(dump, "merlin_journal_degraded 0") {
		t.Fatal("degraded gauge not cleared after reattach")
	}
	if !strings.Contains(dump, "merlin_journal_reattaches_total 1") {
		t.Fatal("reattach counter not bumped")
	}

	// Post-outage state must be durable: a fresh manager recovers the slot
	// and counts the recovery marker as replayed, not corrupt.
	serveClean(t, m, "s", 1)
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	jl.Close()

	jl2 := openJournal(t, dir)
	defer jl2.Close()
	m2 := NewManager(Config{Journal: jl2})
	rs, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Slots != 1 {
		t.Fatalf("recover after outage: %+v", rs)
	}
	ctx, pkt := packet(1)
	if _, _, err := m2.Serve("s", ctx, pkt); err != nil {
		t.Fatalf("recovered slot does not serve: %v", err)
	}
}

// TestMarkJournalUnavailable: the startup-degraded path (journal.Open failed,
// no handle at all) surfaces health + gauge, and AttachJournal heals it,
// persisting the slots deployed during the outage.
func TestMarkJournalUnavailable(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	reg := metrics.New()
	m := NewManager(Config{Metrics: reg, Now: clk.Now})
	if err := m.Deploy("s", progSource(countProg("v1"), nil)); err != nil {
		t.Fatal(err)
	}
	m.MarkJournalUnavailable("state dir unwritable")
	h := m.JournalHealth()
	if !h.Configured || !h.Degraded {
		t.Fatalf("health after MarkJournalUnavailable: %+v", h)
	}
	m.CollectMetrics()
	if !strings.Contains(reg.Text(), "merlin_journal_degraded 1") {
		t.Fatal("startup degradation not visible in metrics")
	}
	serveClean(t, m, "s", 3)

	dir := t.TempDir()
	jl := openJournal(t, dir)
	defer jl.Close()
	if err := m.AttachJournal(jl); err != nil {
		t.Fatal(err)
	}
	if h := m.JournalHealth(); h.Degraded {
		t.Fatalf("still degraded after AttachJournal: %+v", h)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	jl.Close()

	jl2 := openJournal(t, dir)
	defer jl2.Close()
	m2 := NewManager(Config{Journal: jl2})
	rs, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Slots != 1 || rs.CorruptRecords != 0 {
		t.Fatalf("recover after attach: %+v", rs)
	}
}

// TestDegradedFlushIsCalm: Flush during an outage neither errors nor spams
// the dead disk — it is just a probe tick.
func TestDegradedFlushIsCalm(t *testing.T) {
	dir := t.TempDir()
	// All journal writes fail forever (a custom Plan: the dir itself opens
	// fine, the data never lands).
	jl, inj := openChaosJournal(t, dir, writeFaultPlan{})
	defer jl.Close()
	clk := &fakeClock{now: time.Unix(1000, 0)}
	m := NewManager(Config{Journal: jl, Now: clk.Now, JournalDegradeAfter: 2, JournalRetryBase: time.Hour})
	if err := m.Deploy("s", progSource(countProg("v1"), nil)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		_ = m.Deploy("s", progSource(countProg("vX"), nil))
	}
	if !m.JournalHealth().Degraded {
		t.Fatalf("not degraded: %+v", jl.Stats())
	}
	before := sumOps(inj.Stats().Ops)
	for i := 0; i < 10; i++ {
		if err := m.Flush(); err != nil {
			t.Fatalf("degraded Flush returned error: %v", err)
		}
	}
	if after := sumOps(inj.Stats().Ops); after != before {
		t.Fatalf("degraded Flush touched the disk %d times with the backoff pending", after-before)
	}
	serveClean(t, m, "s", 2)
}
