package lifecycle

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"merlin/internal/core"
	"merlin/internal/ebpf"
	"merlin/internal/guard"
	"merlin/internal/ir"
	"merlin/internal/vm"
)

// ---- hand-built programs ------------------------------------------------
//
// All of these read the packet-data pointer and the first packet byte, then
// return XDP_PASS (2), so every variant agrees on clean traffic. The
// "poison" variant additionally dereferences 4096 bytes past the 16-byte
// context when pkt[0] == 0x55, which the VM reports as a bad-memory fault.

func goodProg() *ebpf.Program {
	return &ebpf.Program{Name: "good", Hook: ebpf.HookXDP, Insns: []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R6, ebpf.R1, 0),
		ebpf.LoadMem(ebpf.SizeB, ebpf.R7, ebpf.R6, 0),
		ebpf.Mov64Imm(ebpf.R0, 2),
		ebpf.Exit(),
	}}
}

// slowProg computes the same verdict with a long tail of dead ALU work.
func slowProg(extra int) *ebpf.Program {
	insns := []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R6, ebpf.R1, 0),
		ebpf.LoadMem(ebpf.SizeB, ebpf.R7, ebpf.R6, 0),
	}
	for i := 0; i < extra; i++ {
		insns = append(insns, ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R8, 1))
	}
	insns = append(insns, ebpf.Mov64Imm(ebpf.R0, 2), ebpf.Exit())
	return &ebpf.Program{Name: "slow", Hook: ebpf.HookXDP, Insns: insns}
}

// divergentProg returns XDP_DROP (1) instead of XDP_PASS.
func divergentProg() *ebpf.Program {
	return &ebpf.Program{Name: "divergent", Hook: ebpf.HookXDP, Insns: []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R6, ebpf.R1, 0),
		ebpf.LoadMem(ebpf.SizeB, ebpf.R7, ebpf.R6, 0),
		ebpf.Mov64Imm(ebpf.R0, 1),
		ebpf.Exit(),
	}}
}

// poisonProg faults on packets whose first byte is 0x55.
func poisonProg() *ebpf.Program {
	return &ebpf.Program{Name: "poison", Hook: ebpf.HookXDP, Insns: []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R6, ebpf.R1, 0),
		ebpf.LoadMem(ebpf.SizeB, ebpf.R7, ebpf.R6, 0),
		ebpf.JumpImm(ebpf.JumpNE, ebpf.R7, 0x55, 1),
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R1, 4096),
		ebpf.Mov64Imm(ebpf.R0, 2),
		ebpf.Exit(),
	}}
}

// faultingProg faults on every input.
func faultingProg() *ebpf.Program {
	return &ebpf.Program{Name: "faulting", Hook: ebpf.HookXDP, Insns: []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R0, ebpf.R1, 4096),
		ebpf.Exit(),
	}}
}

// progSource fabricates a deployable build result without running the
// pipeline, so tests can stage arbitrary bytecode.
func progSource(prog, baseline *ebpf.Program) Source {
	return func() (*core.Result, error) {
		return &core.Result{Prog: prog, Baseline: baseline}, nil
	}
}

// packet returns a 64-byte packet whose first byte is b, plus its context.
func packet(b byte) ([]byte, []byte) {
	pkt := make([]byte, 64)
	for i := range pkt {
		pkt[i] = byte(i)
	}
	pkt[0] = b
	return vm.BuildXDPContext(len(pkt)), pkt
}

// serveClean pushes n clean packets and asserts the incumbent's verdict (2)
// is served on every single one — the invariant the whole package exists
// to protect.
func serveClean(t *testing.T, m *Manager, slot string, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		ctx, pkt := packet(0)
		rv, _, err := m.Serve(slot, ctx, pkt)
		if err != nil {
			t.Fatalf("serve %d: %v", i, err)
		}
		if rv != 2 {
			t.Fatalf("serve %d: verdict %d, want 2 (incumbent verdict changed)", i, rv)
		}
	}
}

func eventKinds(evs []Event) []EventKind {
	out := make([]EventKind, len(evs))
	for i, ev := range evs {
		out[i] = ev.Kind
	}
	return out
}

func findEvent(evs []Event, kind EventKind) (Event, bool) {
	for _, ev := range evs {
		if ev.Kind == kind {
			return ev, true
		}
	}
	return Event{}, false
}

// ---- state machine ------------------------------------------------------

func TestPromotionFlow(t *testing.T) {
	m := NewManager(Config{ShadowRuns: 4, CanaryRuns: 4})
	if err := m.Deploy("s", progSource(slowProg(50), nil)); err != nil {
		t.Fatal(err)
	}
	// Candidate is the cheaper program: shadow and canary must both clear.
	if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Promote("s", false); err == nil {
		t.Fatal("promotion before canary cleared must fail")
	}
	serveClean(t, m, "s", 10)
	st, err := m.StatusOf("s")
	if err != nil {
		t.Fatal(err)
	}
	if !st.Cleared {
		t.Fatalf("candidate not cleared after 10 clean runs: %+v", st)
	}
	if st.Mirrored == 0 || st.Served != 10 {
		t.Fatalf("served=%d mirrored=%d, want 10 and >0", st.Served, st.Mirrored)
	}
	if err := m.Promote("s", false); err != nil {
		t.Fatal(err)
	}
	st, _ = m.StatusOf("s")
	if st.LiveGeneration != 2 || st.Stage != StageLive {
		t.Fatalf("after promote: %+v", st)
	}
	// The old incumbent is retained: rollback restores it.
	if err := m.Rollback("s"); err != nil {
		t.Fatal(err)
	}
	st, _ = m.StatusOf("s")
	if st.LiveGeneration != 1 {
		t.Fatalf("after rollback live gen = %d, want 1", st.LiveGeneration)
	}
	if _, ok := findEvent(m.Events("s"), EventRolledBack); !ok {
		t.Fatalf("no rolled-back event: %v", eventKinds(m.Events("s")))
	}
	serveClean(t, m, "s", 3)
}

func TestDivergenceTriggersRollback(t *testing.T) {
	m := NewManager(Config{ShadowRuns: 4, CanaryRuns: 4})
	if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy("s", progSource(divergentProg(), nil)); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 5) // first mirrored packet rejects the candidate
	ev, ok := findEvent(m.Events("s"), EventRejected)
	if !ok {
		t.Fatalf("no rejected event: %v", eventKinds(m.Events("s")))
	}
	if !strings.Contains(ev.Detail, "divergence") {
		t.Fatalf("rejection not attributed to divergence: %s", ev.Detail)
	}
	if ev.Stage != StageShadow {
		t.Fatalf("rejected at stage %s, want shadow", ev.Stage)
	}
	st, _ := m.StatusOf("s")
	if st.CandidateGeneration != 0 || st.LiveGeneration != 1 {
		t.Fatalf("candidate not discarded: %+v", st)
	}
	// Deterministic failures are not retried by the watchdog.
	if st.Retries != 0 || st.Stage == StageQuarantined {
		t.Fatalf("divergence must not quarantine: %+v", st)
	}
}

func TestCycleRegressionRejectedAtCanary(t *testing.T) {
	m := NewManager(Config{ShadowRuns: 2, CanaryRuns: 2, CycleSlack: 0.25})
	if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy("s", progSource(slowProg(200), nil)); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 8)
	ev, ok := findEvent(m.Events("s"), EventRejected)
	if !ok {
		t.Fatalf("no rejected event: %v", eventKinds(m.Events("s")))
	}
	if !strings.Contains(ev.Detail, "cycle regression") {
		t.Fatalf("rejection not attributed to cycle cost: %s", ev.Detail)
	}
	if ev.Stage != StageCanary {
		t.Fatalf("rejected at stage %s, want canary", ev.Stage)
	}
}

func TestCanaryStageFaultQuarantines(t *testing.T) {
	m := NewManager(Config{ShadowRuns: 3, CanaryRuns: 8})
	if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy("s", progSource(poisonProg(), nil)); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 5) // clears shadow (3 runs), then 2 canary runs
	st, _ := m.StatusOf("s")
	if st.CandidateStage != StageCanary {
		t.Fatalf("candidate stage = %s, want canary: %+v", st.CandidateStage, st)
	}
	// The poison packet faults the candidate mid-canary; the incumbent must
	// still serve it with its usual verdict.
	ctx, pkt := packet(0x55)
	rv, _, err := m.Serve("s", ctx, pkt)
	if err != nil || rv != 2 {
		t.Fatalf("poison packet: rv=%d err=%v, want 2/nil from incumbent", rv, err)
	}
	ev, ok := findEvent(m.Events("s"), EventQuarantined)
	if !ok {
		t.Fatalf("no quarantined event: %v", eventKinds(m.Events("s")))
	}
	if ev.Stage != StageCanary {
		t.Fatalf("quarantined at stage %s, want canary", ev.Stage)
	}
	if ev.Fault != vm.FaultBadMemory {
		t.Fatalf("fault kind %s, want %s (typed, not string-matched)", ev.Fault, vm.FaultBadMemory)
	}
	serveClean(t, m, "s", 3)
}

func TestBudgetBlowoutQuarantines(t *testing.T) {
	// goodProg costs ~4 instructions per run; the slow candidate blows the
	// per-run instruction budget and must be quarantined, not promoted.
	m := NewManager(Config{ShadowRuns: 2, CanaryRuns: 2, InsnBudget: 50})
	if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy("s", progSource(slowProg(200), nil)); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 4)
	ev, ok := findEvent(m.Events("s"), EventQuarantined)
	if !ok {
		t.Fatalf("no quarantined event: %v", eventKinds(m.Events("s")))
	}
	if ev.Fault != FaultBudget {
		t.Fatalf("fault kind %s, want %s", ev.Fault, FaultBudget)
	}
}

// ---- watchdog: quarantine, backoff, retry, degradation ------------------

func TestQuarantineBackoffAndRetry(t *testing.T) {
	now := time.Unix(1000, 0)
	cfg := Config{
		ShadowRuns: 2, CanaryRuns: 2,
		MaxRetries: 3, BackoffBase: 100 * time.Millisecond,
		Now: func() time.Time { return now },
	}
	m := NewManager(cfg)
	if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}

	builds := 0
	flaky := func() (*core.Result, error) {
		builds++
		if builds <= 2 {
			return &core.Result{Prog: faultingProg()}, nil
		}
		return &core.Result{Prog: goodProg()}, nil
	}
	if err := m.Deploy("s", flaky); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 1) // candidate faults on first mirror → quarantine
	st, _ := m.StatusOf("s")
	if st.Stage != StageQuarantined {
		t.Fatalf("stage = %s, want quarantined", st.Stage)
	}

	// Backoff not yet expired: no rebuild happens.
	serveClean(t, m, "s", 2)
	if builds != 1 {
		t.Fatalf("rebuilt before backoff expired (builds=%d)", builds)
	}

	// First retry: rebuild is still faulty → re-quarantined, backoff doubles.
	now = now.Add(150 * time.Millisecond)
	serveClean(t, m, "s", 1)
	if builds != 2 {
		t.Fatalf("retry did not rebuild (builds=%d)", builds)
	}
	// 150ms later the doubled (200ms) backoff has not expired.
	now = now.Add(150 * time.Millisecond)
	serveClean(t, m, "s", 1)
	if builds != 2 {
		t.Fatalf("backoff did not grow (builds=%d)", builds)
	}
	// Second retry succeeds and the fresh candidate clears the pipeline.
	now = now.Add(100 * time.Millisecond)
	serveClean(t, m, "s", 6)
	if builds != 3 {
		t.Fatalf("second retry missing (builds=%d)", builds)
	}
	st, _ = m.StatusOf("s")
	if !st.Cleared {
		t.Fatalf("recovered candidate not cleared: %+v", st)
	}
	if err := m.Promote("s", false); err != nil {
		t.Fatal(err)
	}
	st, _ = m.StatusOf("s")
	if st.Retries != 0 || st.Stage != StageLive {
		t.Fatalf("promotion must clear the quarantine ledger: %+v", st)
	}

	kinds := eventKinds(m.Events("s"))
	var quarantines, retries int
	for _, k := range kinds {
		switch k {
		case EventQuarantined:
			quarantines++
		case EventRetry:
			retries++
		}
	}
	if quarantines != 2 || retries != 2 {
		t.Fatalf("quarantined=%d retries=%d, want 2/2: %v", quarantines, retries, kinds)
	}
}

func TestRetryExhaustionGivesUp(t *testing.T) {
	now := time.Unix(1000, 0)
	m := NewManager(Config{
		ShadowRuns: 2, CanaryRuns: 2,
		MaxRetries: 1, BackoffBase: 10 * time.Millisecond,
		Now: func() time.Time { return now },
	})
	if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy("s", progSource(faultingProg(), nil)); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 1) // quarantine #1
	now = now.Add(time.Second)
	serveClean(t, m, "s", 1) // retry #1 → faults again → exhausted
	if _, ok := findEvent(m.Events("s"), EventGaveUp); !ok {
		t.Fatalf("no gave-up event: %v", eventKinds(m.Events("s")))
	}
	now = now.Add(time.Hour)
	serveClean(t, m, "s", 5) // no more retries, incumbent serves forever
	st, _ := m.StatusOf("s")
	if !st.Dead || st.Retries != 1 {
		t.Fatalf("retries must stay exhausted: %+v", st)
	}
}

func TestIncumbentFaultDegradesToBaseline(t *testing.T) {
	// The first deploy goes live unshadowed; when it faults, the slot must
	// fall back to the build's clang baseline and answer from it.
	m := NewManager(Config{})
	if err := m.Deploy("s", progSource(poisonProg(), goodProg())); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 2)
	ctx, pkt := packet(0x55)
	rv, _, err := m.Serve("s", ctx, pkt)
	if err != nil {
		t.Fatalf("degraded serve failed: %v", err)
	}
	if rv != 2 {
		t.Fatalf("fallback verdict %d, want 2", rv)
	}
	ev, ok := findEvent(m.Events("s"), EventDegraded)
	if !ok {
		t.Fatalf("no degraded event: %v", eventKinds(m.Events("s")))
	}
	if ev.Fault != vm.FaultBadMemory || !strings.Contains(ev.Detail, "baseline") {
		t.Fatalf("degradation event wrong: %+v", ev)
	}
	serveClean(t, m, "s", 3) // baseline is now live
}

func TestIncumbentFaultDegradesToLastKnownGood(t *testing.T) {
	m := NewManager(Config{ShadowRuns: 1, CanaryRuns: 1})
	if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy("s", progSource(poisonProg(), nil)); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 4)
	if err := m.Promote("s", false); err != nil {
		t.Fatal(err)
	}
	// The promoted program faults on poison: last-known-good takes over.
	ctx, pkt := packet(0x55)
	rv, _, err := m.Serve("s", ctx, pkt)
	if err != nil || rv != 2 {
		t.Fatalf("degraded serve: rv=%d err=%v", rv, err)
	}
	ev, ok := findEvent(m.Events("s"), EventDegraded)
	if !ok {
		t.Fatalf("no degraded event: %v", eventKinds(m.Events("s")))
	}
	if !strings.Contains(ev.Detail, "last-known-good") {
		t.Fatalf("expected last-known-good fallback: %s", ev.Detail)
	}
	st, _ := m.StatusOf("s")
	if st.LiveGeneration != 1 {
		t.Fatalf("live gen = %d, want 1 (previous incumbent)", st.LiveGeneration)
	}
}

func TestBuildFailureQuarantinesAndRetries(t *testing.T) {
	now := time.Unix(1000, 0)
	m := NewManager(Config{
		ShadowRuns: 1, CanaryRuns: 1,
		MaxRetries: 2, BackoffBase: 10 * time.Millisecond,
		Now: func() time.Time { return now },
	})
	if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	builds := 0
	src := func() (*core.Result, error) {
		builds++
		if builds == 1 {
			return nil, fmt.Errorf("transient toolchain failure")
		}
		return &core.Result{Prog: goodProg()}, nil
	}
	if err := m.Deploy("s", src); err == nil {
		t.Fatal("failing build must surface an error")
	}
	serveClean(t, m, "s", 1)
	now = now.Add(time.Second)
	serveClean(t, m, "s", 4)
	if builds != 2 {
		t.Fatalf("builds = %d, want 2 (one retry)", builds)
	}
	st, _ := m.StatusOf("s")
	if !st.Cleared {
		t.Fatalf("retried candidate should have cleared: %+v", st)
	}
}

// ---- guard-injector matrix ----------------------------------------------

// matrixIR is a small XDP-ish program (bounds check + per-key counter) that
// exercises every Merlin tier, so an injected pass fault has somewhere to
// land.
const matrixIR = `module "matrix"
map @hits : array key=4 value=8 max=4

func count(%ctx: ptr) -> i64 {
entry:
  %key = alloca 4, align 4
  %vslot = alloca 8, align 8
  store i32 %key, 0, align 4
  %data = load ptr, %ctx, align 8
  %endp = gep %ctx, 8
  %end = load ptr, %endp, align 8
  %lim = bin add i64 %data, 14
  %short = icmp ugt i64 %lim, %end
  condbr %short, drop, count
drop:
  ret 1
count:
  %mp = mapptr @hits
  %v = call 1, %mp, %key
  store i64 %vslot, %v, align 8
  %null = icmp eq i64 %v, 0
  condbr %null, drop, bump
bump:
  %vp = load ptr, %vslot, align 8
  %old = load i64, %vp, align 8
  %new = bin add i64 %old, 1
  store i64 %vp, %new, align 8
  ret 2
}
`

// TestInjectorMatrix drives a seeded guard fault into the candidate's build
// for every injectable mode and proves the acceptance invariant: the
// incumbent serves 100% of the traffic with unchanged return values, and
// every injected fault surfaces as a structured build-fault or rollback
// event — never as a serving gap.
func TestInjectorMatrix(t *testing.T) {
	mod, err := ir.Parse(matrixIR)
	if err != nil {
		t.Fatal(err)
	}
	// Expected containment per mode: the event kind that must appear and a
	// substring of its detail.
	expect := map[guard.FaultMode]struct {
		kind   EventKind
		detail string
	}{
		guard.FaultPanic:        {EventBuildFault, "panic"},
		guard.FaultStall:        {EventBuildFault, "timeout"},
		guard.FaultCorrupt:      {EventRejected, "divergence"},
		guard.FaultBadBranch:    {EventBuildFault, "invariant"},
		guard.FaultUnverifiable: {EventBuildFault, "verifier"},
	}
	for _, mode := range guard.Modes() {
		t.Run(string(mode), func(t *testing.T) {
			opts := core.Options{Hook: ebpf.HookXDP, MCPU: 2, KernelALU32: true}
			clean, err := core.BuildForDeploy(mod, "count", opts)
			if err != nil {
				t.Fatal(err)
			}
			// Reference machine: what the incumbent alone would answer.
			ref, err := vm.New(clean.Prog.Clone(), vm.Config{})
			if err != nil {
				t.Fatal(err)
			}

			m := NewManager(Config{ShadowRuns: 4, CanaryRuns: 4})
			if err := m.Deploy("s", progSource(clean.Prog, clean.Baseline)); err != nil {
				t.Fatal(err)
			}
			// Candidate build carries the injected fault. Differential
			// validation at build time is off (GuardDiffInputs 0) so
			// semantic corruption reaches the shadow tier — the online
			// mirror must be the gate that catches it.
			injOpts := opts
			injOpts.GuardDiffInputs = 0
			injOpts.PassTimeout = 30 * time.Millisecond
			injOpts.Injector = &guard.FaultInjector{Pass: "CP&DCE", Mode: mode}
			if err := m.Deploy("s", ModuleSource(mod, "count", injOpts)); err != nil {
				t.Fatal(err)
			}

			inputs := guard.Inputs(ebpf.HookXDP, 12, 99)
			for i, in := range inputs {
				want, _, werr := ref.Run(
					append([]byte(nil), in.Ctx...), append([]byte(nil), in.Pkt...))
				if werr != nil {
					t.Fatalf("reference run %d: %v", i, werr)
				}
				got, _, gerr := m.Serve("s",
					append([]byte(nil), in.Ctx...), append([]byte(nil), in.Pkt...))
				if gerr != nil {
					t.Fatalf("input %d: incumbent stopped serving: %v", i, gerr)
				}
				if got != want {
					t.Fatalf("input %d: served verdict %d, incumbent's is %d", i, got, want)
				}
			}
			st, _ := m.StatusOf("s")
			if st.Served != uint64(len(inputs)) {
				t.Fatalf("served %d of %d", st.Served, len(inputs))
			}

			exp := expect[mode]
			evs := m.Events("s")
			found := false
			for _, ev := range evs {
				if ev.Kind == exp.kind && strings.Contains(ev.Detail, exp.detail) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("mode %s: no %s event mentioning %q in %v", mode, exp.kind, exp.detail, evs)
			}
			// Whatever the mode did, the slot's live program is untouched.
			if st.LiveGeneration != 1 {
				t.Fatalf("mode %s: live generation changed to %d", mode, st.LiveGeneration)
			}
		})
	}
}

// TestHelperStateMirroring proves the mirroring hook: a candidate using
// get_prandom_u32 must see the incumbent's exact helper stream, otherwise
// identical programs would false-diverge in shadow.
func TestHelperStateMirroring(t *testing.T) {
	prandProg := func(name string) *ebpf.Program {
		return &ebpf.Program{Name: name, Hook: ebpf.HookXDP, Insns: []ebpf.Instruction{
			ebpf.Call(7), // get_prandom_u32
			ebpf.ALU64Imm(ebpf.ALUAnd, ebpf.R0, 1),
			ebpf.Exit(),
		}}
	}
	m := NewManager(Config{ShadowRuns: 8, CanaryRuns: 8})
	if err := m.Deploy("s", progSource(prandProg("a"), nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy("s", progSource(prandProg("b"), nil)); err != nil {
		t.Fatal(err)
	}
	ctx, pkt := packet(0)
	for i := 0; i < 20; i++ {
		if _, _, err := m.Serve("s", append([]byte(nil), ctx...), append([]byte(nil), pkt...)); err != nil {
			t.Fatal(err)
		}
	}
	if ev, rejected := findEvent(m.Events("s"), EventRejected); rejected {
		t.Fatalf("identical prandom programs diverged: %s", ev.Detail)
	}
	st, _ := m.StatusOf("s")
	if !st.Cleared {
		t.Fatalf("candidate should have cleared: %+v", st)
	}
}
