package lifecycle

import (
	"merlin/internal/metrics"
)

// The metrics half of the manager: every slot carries preresolved registry
// handles for its hot-path counters (served, mirrored, divergence, canary
// cycle histogram), while the per-EventKind counters are driven by draining
// the slot's event ring through a sequence-number watermark. Draining is
// read-only with respect to the ring — Events() ordering and capacity are
// never perturbed — and idempotent: an event is counted exactly once no
// matter how often the ring is scanned. Events about to be evicted from the
// bounded ring are drained first, so no event is ever lost to the registry
// even if nothing scrapes between evictions.
//
// Everything here runs under the manager lock, so lazy per-kind series
// creation needs no extra synchronization.

// slotMetrics holds one slot's registry handles.
type slotMetrics struct {
	reg  *metrics.Registry
	slot string

	served       *metrics.Counter
	mirrored     *metrics.Counter
	divergence   *metrics.Counter
	degraded     *metrics.Counter
	canaryRouted *metrics.Counter
	canaryCyc    *metrics.Histogram

	events map[EventKind]*metrics.Counter
	stages map[Stage]*metrics.Counter

	liveGen   *metrics.Gauge
	candRuns  *metrics.Gauge
	ringDepth *metrics.Gauge
	retries   *metrics.Gauge
}

func newSlotMetrics(reg *metrics.Registry, slot string) *slotMetrics {
	return &slotMetrics{
		reg:  reg,
		slot: slot,
		served: reg.Counter("merlin_lifecycle_served_total",
			"Packets answered by the slot (incumbent or degraded fallback).", "slot", slot),
		mirrored: reg.Counter("merlin_lifecycle_mirrored_total",
			"Packets mirrored into a shadow/canary candidate.", "slot", slot),
		divergence: reg.Counter("merlin_lifecycle_mirror_divergence_total",
			"Mirrored runs whose candidate verdict diverged from the incumbent.", "slot", slot),
		degraded: reg.Counter("merlin_lifecycle_degraded_serves_total",
			"Packets answered by a fallback after an incumbent fault.", "slot", slot),
		canaryRouted: reg.Counter("merlin_lifecycle_canary_routed_total",
			"Live packets whose verdict was answered by the canary (CanaryFraction routing).", "slot", slot),
		canaryCyc: reg.Histogram("merlin_lifecycle_canary_cycles",
			"Candidate cycle cost per mirrored canary run (log2 buckets).", "slot", slot),
		events: map[EventKind]*metrics.Counter{},
		stages: map[Stage]*metrics.Counter{},
		liveGen: reg.Gauge("merlin_lifecycle_live_generation",
			"Generation of the serving program.", "slot", slot),
		candRuns: reg.Gauge("merlin_lifecycle_candidate_runs",
			"Clean mirrored runs of the in-flight candidate in its current stage.", "slot", slot),
		ringDepth: reg.Gauge("merlin_lifecycle_event_ring_depth",
			"Events currently held in the slot's bounded ring.", "slot", slot),
		retries: reg.Gauge("merlin_lifecycle_quarantine_retries",
			"Rebuild attempts consumed by the current quarantine episode.", "slot", slot),
	}
}

// servedInc and friends are nil-safe so the serve path never branches on
// whether metrics are configured.
func (sm *slotMetrics) servedInc() {
	if sm != nil {
		sm.served.Inc()
	}
}

// servedAdd counts a whole clean batch in one registry update.
func (sm *slotMetrics) servedAdd(n uint64) {
	if sm != nil && n > 0 {
		sm.served.Add(n)
	}
}

func (sm *slotMetrics) mirroredInc() {
	if sm != nil {
		sm.mirrored.Inc()
	}
}

func (sm *slotMetrics) divergenceInc() {
	if sm != nil {
		sm.divergence.Inc()
	}
}

func (sm *slotMetrics) degradedInc() {
	if sm != nil {
		sm.degraded.Inc()
	}
}

func (sm *slotMetrics) canaryRoutedInc() {
	if sm != nil {
		sm.canaryRouted.Inc()
	}
}

func (sm *slotMetrics) observeCanaryCycles(cycles uint64) {
	if sm != nil {
		sm.canaryCyc.Observe(cycles)
	}
}

// journalMetrics holds the manager-level persistence telemetry (no slot
// label — the journal is shared).
type journalMetrics struct {
	appends      *metrics.Counter
	appendErrs   *metrics.Counter
	compactions  *metrics.Counter
	corrupt      *metrics.Counter
	replayed     *metrics.Counter
	snapBytes    *metrics.Gauge
	journBytes   *metrics.Gauge
	recovered    *metrics.Gauge
	recoveredDs  *metrics.Gauge
	degraded     *metrics.Gauge
	degradations *metrics.Counter
	reattaches   *metrics.Counter
	compactSoft  *metrics.Counter
	fsyncs       *metrics.Counter
	rotations    *metrics.Counter
	segments     *metrics.Gauge
}

func newJournalMetrics(reg *metrics.Registry) *journalMetrics {
	return &journalMetrics{
		appends: reg.Counter("merlin_journal_appends_total",
			"Slot-state records appended to the journal."),
		appendErrs: reg.Counter("merlin_journal_append_errors_total",
			"Journal appends or compactions that failed (state may lag disk)."),
		compactions: reg.Counter("merlin_journal_compactions_total",
			"Snapshot compactions (journal truncations)."),
		corrupt: reg.Counter("merlin_journal_corrupt_records_total",
			"Corrupt or torn journal/snapshot records discarded during open, replay, or decode."),
		replayed: reg.Counter("merlin_journal_replayed_records_total",
			"Journal records replayed by Recover."),
		snapBytes: reg.Gauge("merlin_journal_snapshot_bytes",
			"Payload size of the last written or recovered snapshot."),
		journBytes: reg.Gauge("merlin_journal_bytes",
			"Current journal file size."),
		recovered: reg.Gauge("merlin_lifecycle_recovered_slots",
			"Slots reconstructed from the journal by the last Recover."),
		recoveredDs: reg.Gauge("merlin_lifecycle_recovered_deployments",
			"Deployments (live/last-known-good/baseline) reconstructed by the last Recover."),
		degraded: reg.Gauge("merlin_journal_degraded",
			"1 while the journal is detached after persistent storage failures (serving continues in-memory)."),
		degradations: reg.Counter("merlin_journal_degradations_total",
			"Times persistent storage failures detached the journal."),
		reattaches: reg.Counter("merlin_journal_reattaches_total",
			"Successful journal re-attachments after degradation."),
		compactSoft: reg.Counter("merlin_journal_compact_soft_errors_total",
			"Best-effort durability steps (snapshot fsync, dir fsync, segment removal) that failed during compaction."),
		fsyncs: reg.Counter("merlin_journal_fsyncs_total",
			"Journal fsyncs (forced stage transitions plus the durability policy's flushes)."),
		rotations: reg.Counter("merlin_journal_rotations_total",
			"Journal segment rollovers."),
		segments: reg.Gauge("merlin_journal_segments",
			"Current journal segment file count."),
	}
}

func (jm *journalMetrics) appendInc() {
	if jm != nil {
		jm.appends.Inc()
	}
}

func (jm *journalMetrics) appendErrInc() {
	if jm != nil {
		jm.appendErrs.Inc()
	}
}

func (jm *journalMetrics) compactionInc() {
	if jm != nil {
		jm.compactions.Inc()
	}
}

func (jm *journalMetrics) corruptAdd(n int) {
	if jm != nil && n > 0 {
		jm.corrupt.Add(uint64(n))
	}
}

func (jm *journalMetrics) degradedSet(on bool) {
	if jm != nil {
		v := int64(0)
		if on {
			v = 1
		}
		jm.degraded.Set(v)
	}
}

func (jm *journalMetrics) degradationInc() {
	if jm != nil {
		jm.degradations.Inc()
	}
}

func (jm *journalMetrics) reattachInc() {
	if jm != nil {
		jm.reattaches.Inc()
	}
}

// eventCounter lazily resolves the per-kind counter (manager lock held).
func (sm *slotMetrics) eventCounter(kind EventKind) *metrics.Counter {
	c := sm.events[kind]
	if c == nil {
		c = sm.reg.Counter("merlin_lifecycle_events_total",
			"Lifecycle events by kind, drained losslessly from the per-slot event rings.",
			"slot", sm.slot, "kind", string(kind))
		sm.events[kind] = c
	}
	return c
}

// stageCounter lazily resolves the stage-transition counter (manager lock
// held). The stage label is the stage the candidate arrived in.
func (sm *slotMetrics) stageCounter(stage Stage) *metrics.Counter {
	c := sm.stages[stage]
	if c == nil {
		c = sm.reg.Counter("merlin_lifecycle_stage_transitions_total",
			"Candidate stage transitions, by destination stage.",
			"slot", sm.slot, "stage", string(stage))
		sm.stages[stage] = c
	}
	return c
}

// drainEventsLocked counts every event in evs whose sequence number is past
// the slot's watermark, then advances the watermark. It never mutates the
// ring, so Events() history is byte-for-byte identical before and after, and
// re-draining the same events is a no-op.
func (m *Manager) drainEventsLocked(s *slot, evs []Event) {
	if s.met == nil {
		return
	}
	for _, ev := range evs {
		if ev.Seq <= s.metricsSeq {
			continue
		}
		s.metricsSeq = ev.Seq
		s.met.eventCounter(ev.Kind).Inc()
		if ev.Kind == EventStageAdvance || ev.Kind == EventPromoted {
			s.met.stageCounter(ev.Stage).Inc()
		}
	}
}

// refreshGaugesLocked re-derives the point-in-time gauges from slot state.
func (m *Manager) refreshGaugesLocked(s *slot) {
	sm := s.met
	if sm == nil {
		return
	}
	liveGen := 0
	if s.live != nil {
		liveGen = s.live.gen
	}
	sm.liveGen.Set(int64(liveGen))
	candRuns := 0
	if s.cand != nil {
		candRuns = s.cand.runs
	}
	sm.candRuns.Set(int64(candRuns))
	sm.ringDepth.Set(int64(len(s.events)))
	retries := 0
	if s.quarantine != nil {
		retries = s.quarantine.attempts
	}
	sm.retries.Set(int64(retries))
}

// CollectMetrics drains any not-yet-counted events from every slot's ring
// into the registry and refreshes the per-slot gauges. It is the export
// hook: call it immediately before encoding the registry. Collection is
// idempotent and leaves every ring untouched — exporting twice in a row
// yields identical event history and identical counter values.
func (m *Manager) CollectMetrics() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, name := range m.order {
		s := m.slots[name]
		m.drainEventsLocked(s, s.events)
		m.refreshGaugesLocked(s)
	}
	if m.jmet != nil && m.cfg.Journal != nil {
		m.jmet.journBytes.Set(m.cfg.Journal.Size())
		// Publish the journal's own accounting as counter deltas against the
		// last collection's watermark (the registry counters are monotonic;
		// journal.Stats is monotonic per handle, reset by AttachJournal).
		st := m.cfg.Journal.Stats()
		if d := st.Fsyncs - m.lastJStats.Fsyncs; d > 0 {
			m.jmet.fsyncs.Add(uint64(d))
		}
		if d := st.Rotations - m.lastJStats.Rotations; d > 0 {
			m.jmet.rotations.Add(uint64(d))
		}
		if d := st.CompactSoftErrors - m.lastJStats.CompactSoftErrors; d > 0 {
			m.jmet.compactSoft.Add(uint64(d))
		}
		m.jmet.segments.Set(int64(st.Segments))
		m.lastJStats = st
	}
}
