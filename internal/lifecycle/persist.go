package lifecycle

import (
	"encoding/json"
	"fmt"
	"time"

	"merlin/internal/ebpf"
)

// The persistence half of the manager. Slot state is journaled as JSON
// payloads inside the journal's checksummed records: every mutating
// transition appends the affected slot's complete persisted state (an
// idempotent upsert — replay order is the only thing that matters), and the
// full ledger is periodically compacted into the snapshot. Recovery is
// snapshot + journal replay, with every corruption counted and tolerated:
// a record that fails to decode is skipped, a deployment whose program
// cannot be reloaded falls back to last-known-good, and a slot with nothing
// restorable is dropped — Recover never returns an error for bad state, only
// for impossible configuration.
//
// What is deliberately NOT persisted:
//   - in-flight candidates (staged/shadow/canary): their mirrored-run
//     validation history would be stale after a restart, so a crash rolls a
//     mid-promotion slot back to its last-known-good incumbent and the
//     candidate must re-earn promotion;
//   - registry metrics: Prometheus counters are expected to reset on
//     process restart (slot status counters — served/mirrored — ARE durable);
//   - build Sources: closures cannot be serialized; the opaque
//     DeployOptions.SourceDesc is journaled instead and reattached through
//     Config.ResolveSource.

// persistVersion guards the snapshot/record schema.
const persistVersion = 1

// persistedDeployment is one serialized deployment: bytecode, map contents,
// and the helper-nondeterminism state, enough to rebuild a warm machine.
type persistedDeployment struct {
	Gen   int
	Prog  *ebpf.Program
	Maps  [][]byte
	Rng   uint64
	Ktime uint64
}

// persistedQuarantine is the watchdog ledger. NotBefore is absolute, so the
// remaining backoff survives a restart (a backoff that expired while the
// daemon was down allows an immediate retry).
type persistedQuarantine struct {
	Attempts  int
	NotBefore int64 // UnixNano; 0 = none
	Dead      bool
	Reason    string
}

// persistedSlot is a slot's complete durable state.
type persistedSlot struct {
	Version        int
	Name           string
	SourceDesc     string
	CanaryFraction float64
	NextGen        int
	Live           *persistedDeployment
	LastGood       *persistedDeployment
	Baseline       *persistedDeployment
	Quarantine     *persistedQuarantine
	Served         uint64
	Mirrored       uint64
	CanaryRouted   uint64
	Seq            int
	Events         []Event
}

// persistedRecord is one journal payload: a slot upsert, a slot removal
// tombstone (Kind "remove", Name set), or the recovery marker a degraded
// journal appends on re-attachment (Kind "reattach", At set, Slot nil).
type persistedRecord struct {
	Kind string // "slot" | "remove" | "reattach"
	Slot *persistedSlot
	Name string `json:",omitempty"` // removal tombstones only
	At   int64  `json:",omitempty"` // UnixNano, recovery markers only
}

// persistedSnapshot is the compacted full state.
type persistedSnapshot struct {
	Version int
	Slots   []*persistedSlot
}

func encodeDeployment(d *deployment) *persistedDeployment {
	if d == nil {
		return nil
	}
	rng, ktime := d.machine.HelperState()
	return &persistedDeployment{
		Gen:   d.gen,
		Prog:  d.prog,
		Maps:  d.machine.MapStates(),
		Rng:   rng,
		Ktime: ktime,
	}
}

func (m *Manager) encodeSlotLocked(s *slot) *persistedSlot {
	ps := &persistedSlot{
		Version:        persistVersion,
		Name:           s.name,
		SourceDesc:     s.opts.SourceDesc,
		CanaryFraction: s.opts.CanaryFraction,
		NextGen:        s.nextGen,
		Live:           encodeDeployment(s.live),
		LastGood:       encodeDeployment(s.lastGood),
		Baseline:       encodeDeployment(s.baseline),
		Served:         s.served,
		Mirrored:       s.mirrored,
		CanaryRouted:   s.canaryRouted,
		Seq:            s.seq,
		Events:         append([]Event(nil), s.events...),
	}
	if q := s.quarantine; q != nil {
		pq := &persistedQuarantine{Attempts: q.attempts, Dead: q.dead, Reason: q.reason}
		if !q.notBefore.IsZero() {
			pq.NotBefore = q.notBefore.UnixNano()
		}
		ps.Quarantine = pq
	}
	return ps
}

// journalSlotLocked appends the slot's current state to the journal (no-op
// without one). sync forces an fsync — used on stage transitions so they
// survive machine crashes, not just process crashes. Persistence failures
// are counted, never propagated: serving always wins over durability. While
// degraded the write is skipped entirely (the state lands when re-attachment
// succeeds — re-attaching re-journals every slot), with each transition
// doubling as a chance to run a due re-attachment probe.
func (m *Manager) journalSlotLocked(s *slot, sync bool) {
	j := m.cfg.Journal
	if j == nil {
		return
	}
	if m.jDegraded {
		m.maybeReattachLocked()
		return
	}
	payload, err := json.Marshal(persistedRecord{Kind: "slot", Slot: m.encodeSlotLocked(s)})
	if err != nil {
		m.jmet.appendErrInc()
		return
	}
	if err := j.Append(payload, sync); err != nil {
		m.journalFailLocked(s, "append", err)
		return
	}
	m.journalOKLocked()
	m.jmet.appendInc()
	if j.Records() >= m.cfg.CompactEvery {
		m.compactLocked()
	}
}

// journalRemoveLocked appends a removal tombstone so a crash after Remove
// does not resurrect the slot on Recover. Same failure policy as
// journalSlotLocked: count, never propagate. The tombstone fsyncs — removal
// is a stage transition for placement purposes.
func (m *Manager) journalRemoveLocked(name string) {
	j := m.cfg.Journal
	if j == nil {
		return
	}
	if m.jDegraded {
		m.maybeReattachLocked()
		return
	}
	payload, err := json.Marshal(persistedRecord{Kind: "remove", Name: name})
	if err != nil {
		m.jmet.appendErrInc()
		return
	}
	if err := j.Append(payload, true); err != nil {
		m.journalFailLocked(nil, "append", err)
		return
	}
	m.journalOKLocked()
	m.jmet.appendInc()
	if j.Records() >= m.cfg.CompactEvery {
		m.compactLocked()
	}
}

// compactLocked writes the full ledger as the snapshot and truncates the
// journal.
func (m *Manager) compactLocked() {
	j := m.cfg.Journal
	if j == nil || m.jDegraded {
		return
	}
	snap := persistedSnapshot{Version: persistVersion}
	for _, name := range m.order {
		snap.Slots = append(snap.Slots, m.encodeSlotLocked(m.slots[name]))
	}
	payload, err := json.Marshal(snap)
	if err != nil {
		m.jmet.appendErrInc()
		return
	}
	if err := j.Compact(payload); err != nil {
		m.journalFailLocked(nil, "compact", err)
		return
	}
	m.journalOKLocked()
	m.jmet.compactionInc()
	if m.jmet != nil {
		m.jmet.snapBytes.Set(int64(len(payload)))
	}
}

// Flush journals the current state of every slot (map contents included) and
// syncs the journal. merlind calls it after traffic (map mutations happen
// without lifecycle transitions) and on SIGINT/SIGTERM.
func (m *Manager) Flush() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	j := m.cfg.Journal
	if j == nil {
		return nil
	}
	if m.jDegraded {
		// Nothing to flush while detached; use the call as a probe tick. A
		// successful probe already re-journaled and synced everything.
		m.maybeReattachLocked()
		return nil
	}
	for _, name := range m.order {
		m.journalSlotLocked(m.slots[name], false)
	}
	if m.jDegraded {
		return nil // the loop above degraded us; state is in-memory now
	}
	if err := j.Sync(); err != nil {
		m.journalFailLocked(nil, "sync", err)
		return nil
	}
	m.journalOKLocked()
	return nil
}

// Compact forces a snapshot compaction (exposed for shutdown paths: one
// snapshot instead of a long journal to replay on the next boot).
func (m *Manager) Compact() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.compactLocked()
}

// RecoverStats reports what Recover reconstructed and what it had to drop.
type RecoverStats struct {
	// Slots / Deployments are the recovered slot and machine counts.
	Slots       int
	Deployments int
	// ReplayedRecords counts intact journal records applied on top of the
	// snapshot; SnapshotBytes is the snapshot payload size (0 = none).
	ReplayedRecords int
	SnapshotBytes   int
	// CorruptRecords counts everything discarded: torn journal tails, bad
	// checksums, undecodable payloads, wrong-version records.
	CorruptRecords int
	// DroppedSlots counts journaled slots with no restorable deployment;
	// DroppedCandidates would always be 0 (candidates are never persisted)
	// and is omitted.
	DroppedSlots int
	// UnresolvedSources counts recovered slots whose SourceDesc could not be
	// reattached (watchdog rebuilds disabled for them).
	UnresolvedSources int
}

func (rs RecoverStats) String() string {
	return fmt.Sprintf("slots=%d deployments=%d replayed=%d snapshot_bytes=%d corrupt=%d dropped=%d unresolved_sources=%d",
		rs.Slots, rs.Deployments, rs.ReplayedRecords, rs.SnapshotBytes,
		rs.CorruptRecords, rs.DroppedSlots, rs.UnresolvedSources)
}

// Recover rebuilds the manager's slots from the journal's snapshot + record
// replay. Call it once, on startup, before serving. Corrupt state degrades:
// damaged records are skipped and counted, a live deployment that cannot be
// reloaded falls back to last-known-good (the "mid-promotion rolls back"
// guarantee), and at worst the manager starts with a fresh ledger. The
// returned stats are also published to the metrics registry when configured.
func (m *Manager) Recover() (RecoverStats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	var rs RecoverStats
	j := m.cfg.Journal
	if j == nil {
		return rs, fmt.Errorf("lifecycle: Recover needs Config.Journal")
	}
	if len(m.slots) > 0 {
		return rs, fmt.Errorf("lifecycle: Recover must run before any Deploy")
	}

	// Latest-wins upsert of persisted slots: snapshot first, then journal
	// records in append order.
	latest := map[string]*persistedSlot{}
	var order []string
	upsert := func(ps *persistedSlot) {
		if ps == nil || ps.Name == "" {
			rs.CorruptRecords++
			return
		}
		if ps.Version != persistVersion {
			rs.CorruptRecords++
			return
		}
		if _, ok := latest[ps.Name]; !ok {
			order = append(order, ps.Name)
		}
		latest[ps.Name] = ps
	}

	if payload, ok := j.Snapshot(); ok {
		var snap persistedSnapshot
		if err := json.Unmarshal(payload, &snap); err != nil || snap.Version != persistVersion {
			rs.CorruptRecords++
		} else {
			rs.SnapshotBytes = len(payload)
			for _, ps := range snap.Slots {
				upsert(ps)
			}
		}
	}
	_ = j.Replay(func(payload []byte) error {
		var rec persistedRecord
		err := json.Unmarshal(payload, &rec)
		switch {
		case err != nil:
			rs.CorruptRecords++
		case rec.Kind == "slot":
			rs.ReplayedRecords++
			upsert(rec.Slot)
		case rec.Kind == "remove":
			rs.ReplayedRecords++
			if _, ok := latest[rec.Name]; ok {
				delete(latest, rec.Name)
				for i, n := range order {
					if n == rec.Name {
						order = append(order[:i], order[i+1:]...)
						break
					}
				}
			}
		case rec.Kind == recoveryMarkerKind:
			// A past outage's re-attachment marker: healthy, carries no slot
			// state.
			rs.ReplayedRecords++
		default:
			rs.CorruptRecords++
		}
		return nil
	})
	// Framing-level damage found by the journal itself (torn tails, bad
	// checksums) joins the decode-level count.
	rs.CorruptRecords += j.Stats().CorruptRecords

	for _, name := range order {
		ps := latest[name]
		s, nds, err := m.restoreSlotLocked(ps)
		if err != nil {
			rs.DroppedSlots++
			continue
		}
		rs.Slots++
		rs.Deployments += nds
		if ps.SourceDesc != "" && s.source == nil {
			rs.UnresolvedSources++
		}
	}

	m.publishRecoverLocked(rs)
	return rs, nil
}

// restoreDeployment rebuilds one machine from its persisted form.
func (m *Manager) restoreDeployment(pd *persistedDeployment) (*deployment, error) {
	if pd == nil {
		return nil, nil
	}
	if pd.Prog == nil {
		return nil, fmt.Errorf("lifecycle: persisted deployment gen %d has no program", pd.Gen)
	}
	d, err := m.newDeployment(pd.Prog, pd.Gen)
	if err != nil {
		return nil, err
	}
	if err := d.machine.SetMapStates(pd.Maps); err != nil {
		return nil, err
	}
	d.machine.SetHelperState(pd.Rng, pd.Ktime)
	return d, nil
}

// restoreSlotLocked reconstructs one slot. The live deployment is restored
// from Live, falling back to LastGood then Baseline; a slot with no
// restorable deployment is dropped with an error.
func (m *Manager) restoreSlotLocked(ps *persistedSlot) (*slot, int, error) {
	var live, lastGood, baseline *deployment
	nds := 0
	rolledBack := ""

	if d, err := m.restoreDeployment(ps.Live); err == nil && d != nil {
		live, nds = d, nds+1
	} else if err != nil {
		rolledBack = fmt.Sprintf("live gen %d unrestorable (%v); ", ps.Live.Gen, err)
	}
	if d, err := m.restoreDeployment(ps.LastGood); err == nil && d != nil {
		if live == nil {
			live = d
		} else {
			lastGood = d
		}
		nds++
	}
	if d, err := m.restoreDeployment(ps.Baseline); err == nil && d != nil {
		baseline, nds = d, nds+1
		if live == nil {
			live = baseline
		}
	}
	if live == nil {
		return nil, 0, fmt.Errorf("lifecycle: slot %s: no restorable deployment", ps.Name)
	}
	live.stage = StageLive

	s := m.slotLocked(ps.Name)
	s.opts = DeployOptions{CanaryFraction: ps.CanaryFraction, SourceDesc: ps.SourceDesc}
	s.nextGen = ps.NextGen
	s.live, s.lastGood, s.baseline = live, lastGood, baseline
	s.served, s.mirrored, s.canaryRouted = ps.Served, ps.Mirrored, ps.CanaryRouted
	s.seq = ps.Seq
	if n := len(ps.Events); n > m.cfg.MaxEvents {
		ps.Events = ps.Events[n-m.cfg.MaxEvents:]
	}
	s.events = append([]Event(nil), ps.Events...)
	if pq := ps.Quarantine; pq != nil {
		q := &quarantineState{attempts: pq.Attempts, dead: pq.Dead, reason: pq.Reason}
		if pq.NotBefore != 0 {
			q.notBefore = time.Unix(0, pq.NotBefore)
		}
		s.quarantine = q
	}
	if ps.SourceDesc != "" && m.cfg.ResolveSource != nil {
		if src, err := m.cfg.ResolveSource(ps.SourceDesc); err == nil {
			s.source = src
		}
	}

	detail := fmt.Sprintf("%srecovered live gen %d (served=%d, %d events)",
		rolledBack, s.live.gen, s.served, len(s.events))
	if q := s.quarantine; q != nil {
		remaining := time.Duration(0)
		if !q.notBefore.IsZero() {
			if left := q.notBefore.Sub(m.cfg.Now()); left > 0 {
				remaining = left
			}
		}
		detail += fmt.Sprintf("; quarantined (attempts=%d dead=%v backoff_left=%s)",
			q.attempts, q.dead, remaining)
	}
	m.eventLocked(s, Event{Kind: EventRecovered, Stage: StageLive,
		Generation: s.live.gen, Detail: detail})
	return s, nds, nil
}

// publishRecoverLocked pushes recovery stats into the registry.
func (m *Manager) publishRecoverLocked(rs RecoverStats) {
	jm := m.jmet
	if jm == nil {
		return
	}
	jm.recovered.Set(int64(rs.Slots))
	jm.recoveredDs.Set(int64(rs.Deployments))
	jm.snapBytes.Set(int64(rs.SnapshotBytes))
	jm.corruptAdd(rs.CorruptRecords)
	if rs.ReplayedRecords > 0 {
		jm.replayed.Add(uint64(rs.ReplayedRecords))
	}
}
