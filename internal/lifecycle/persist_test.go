package lifecycle

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"

	"merlin/internal/core"
	"merlin/internal/ebpf"
	"merlin/internal/helpers"
	"merlin/internal/journal"
	"merlin/internal/metrics"
	"merlin/internal/vm"
)

// countProg counts every packet into slot 0 of an array map "cnt" (u64
// value, atomic add) and returns XDP_PASS, so map-state transfer and
// recovery are observable as a counter that must never go backwards.
func countProg(name string) *ebpf.Program {
	return &ebpf.Program{
		Name: name,
		Hook: ebpf.HookXDP,
		Insns: []ebpf.Instruction{
			// key = 0 at fp-4
			ebpf.Mov64Imm(ebpf.R6, 0),
			ebpf.StoreMem(ebpf.SizeW, ebpf.R10, -4, ebpf.R6),
			ebpf.LoadMapPtr(ebpf.R1, 0),
			ebpf.Mov64Reg(ebpf.R2, ebpf.R10),
			ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R2, -4),
			ebpf.Call(helpers.MapLookupElem),
			ebpf.JumpImm(ebpf.JumpEq, ebpf.R0, 0, 2),
			// *value += 1
			ebpf.Mov64Imm(ebpf.R1, 1),
			ebpf.Atomic(ebpf.SizeDW, ebpf.AtomicAdd, ebpf.R0, 0, ebpf.R1),
			ebpf.Mov64Imm(ebpf.R0, 2),
			ebpf.Exit(),
		},
		Maps: []ebpf.MapSpec{{Name: "cnt", Kind: 0, KeySize: 4, ValueSize: 8, MaxEntries: 1}},
	}
}

// liveCounter reads the live machine's packet counter.
func liveCounter(t *testing.T, m *Manager, name string) uint64 {
	t.Helper()
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.slots[name]
	if s == nil || s.live == nil {
		t.Fatalf("slot %s has no live deployment", name)
	}
	mp := s.live.machine.MapByName("cnt")
	if mp == nil {
		t.Fatalf("slot %s live machine has no cnt map", name)
	}
	return binary.LittleEndian.Uint64(mp.Backing()[:8])
}

func openJournal(t *testing.T, dir string) *journal.Log {
	t.Helper()
	jl, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("journal.Open(%s): %v", dir, err)
	}
	return jl
}

// resolveCount is the test ResolveSource: it reattaches the "count" source.
func resolveCount(desc string) (Source, error) {
	if desc != "count" {
		return nil, fmt.Errorf("unknown source desc %q", desc)
	}
	return progSource(countProg("rebuilt"), nil), nil
}

// TestPromotionTransfersMapState is the in-memory half of the map-transfer
// guarantee: a promoted candidate continues from the incumbent's counters,
// and an explicit rollback carries them back again.
func TestPromotionTransfersMapState(t *testing.T) {
	m := NewManager(Config{ShadowRuns: 2, CanaryRuns: 2})
	if err := m.Deploy("s", progSource(countProg("v1"), nil)); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 3)
	if err := m.Deploy("s", progSource(countProg("v2"), nil)); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 4) // 2 shadow + 2 canary → cleared
	if err := m.Promote("s", false); err != nil {
		t.Fatal(err)
	}
	// Incumbent ran 7 packets; the candidate's own mirrored count (4) must
	// have been overwritten by the transfer.
	if got := liveCounter(t, m, "s"); got != 7 {
		t.Fatalf("counter after promotion = %d, want 7 (incumbent state transferred)", got)
	}
	ev, ok := findLastEvent(m.Events("s"), EventPromoted)
	if !ok || !containsStr(ev.Detail, "maps transferred") {
		t.Fatalf("promotion event missing map-transfer note: %+v", ev)
	}
	serveClean(t, m, "s", 2)
	if got := liveCounter(t, m, "s"); got != 9 {
		t.Fatalf("counter after post-promotion serves = %d, want 9", got)
	}

	// Rollback carries the fresher counters back to the old incumbent.
	if err := m.Rollback("s"); err != nil {
		t.Fatal(err)
	}
	if got := liveCounter(t, m, "s"); got != 9 {
		t.Fatalf("counter after rollback = %d, want 9 (state carried back)", got)
	}
	serveClean(t, m, "s", 1)
	if got := liveCounter(t, m, "s"); got != 10 {
		t.Fatalf("counter after post-rollback serve = %d, want 10", got)
	}
}

func containsStr(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}

func findLastEvent(evs []Event, kind EventKind) (Event, bool) {
	for i := len(evs) - 1; i >= 0; i-- {
		if evs[i].Kind == kind {
			return evs[i], true
		}
	}
	return Event{}, false
}

func countEvents(evs []Event, kind EventKind) int {
	n := 0
	for _, ev := range evs {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// TestRecoverRoundTrip is the acceptance scenario: deploy → promote → crash
// (journal closed, manager dropped) → restart → the live slot, its
// generation, its last-known-good, its served counters and its map contents
// all come back, and the counter continues from where it left off.
func TestRecoverRoundTrip(t *testing.T) {
	dir := t.TempDir()
	jl := openJournal(t, dir)
	m := NewManager(Config{ShadowRuns: 2, CanaryRuns: 2, Journal: jl})
	opts := DeployOptions{SourceDesc: "count"}
	if err := m.DeployWith("s", progSource(countProg("v1"), nil), opts); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 3)
	if err := m.DeployWith("s", progSource(countProg("v2"), nil), opts); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 4)
	if err := m.Promote("s", false); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 2)
	if got := liveCounter(t, m, "s"); got != 9 {
		t.Fatalf("pre-crash counter = %d, want 9", got)
	}
	// Serves after the last transition mutated only map state; Flush captures
	// it the way merlind does after traffic.
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := jl.Close(); err != nil {
		t.Fatal(err)
	}

	// "Restart": fresh journal handle, fresh manager, fresh registry.
	reg := metrics.New()
	jl2 := openJournal(t, dir)
	defer jl2.Close()
	m2 := NewManager(Config{ShadowRuns: 2, CanaryRuns: 2, Journal: jl2,
		Metrics: reg, ResolveSource: resolveCount})
	rs, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.Slots != 1 || rs.Deployments != 2 {
		t.Fatalf("recover stats %s: want 1 slot, 2 deployments (live + last-known-good)", rs)
	}
	if rs.CorruptRecords != 0 || rs.DroppedSlots != 0 || rs.UnresolvedSources != 0 {
		t.Fatalf("clean journal recovered with damage: %s", rs)
	}
	st, err := m2.StatusOf("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.Stage != StageLive || st.LiveGeneration != 2 {
		t.Fatalf("recovered status %s: want live gen 2", st)
	}
	if st.Served != 9 || st.CandidateGeneration != 0 {
		t.Fatalf("recovered status %s: want served=9 and no candidate", st)
	}
	if got := liveCounter(t, m2, "s"); got != 9 {
		t.Fatalf("recovered counter = %d, want 9 (map contents survived the restart)", got)
	}
	if ev, ok := findEvent(m2.Events("s"), EventRecovered); !ok {
		t.Fatalf("no %s event after Recover; events: %v", EventRecovered, eventKinds(m2.Events("s")))
	} else if !containsStr(ev.Detail, "gen 2") {
		t.Fatalf("recovered event detail %q does not name the live generation", ev.Detail)
	}

	// The counter continues — recovery restored state, not a fresh map.
	serveClean(t, m2, "s", 1)
	if got := liveCounter(t, m2, "s"); got != 10 {
		t.Fatalf("counter after recovered serve = %d, want 10", got)
	}
	st, _ = m2.StatusOf("s")
	if st.Served != 10 {
		t.Fatalf("served after recovered serve = %d, want 10", st.Served)
	}

	// Last-known-good survived too: rollback restores gen 1 (with the fresh
	// counters carried over).
	if err := m2.Rollback("s"); err != nil {
		t.Fatalf("rollback after recovery: %v", err)
	}
	st, _ = m2.StatusOf("s")
	if st.LiveGeneration != 1 {
		t.Fatalf("post-rollback generation = %d, want 1 (last-known-good recovered)", st.LiveGeneration)
	}
	if got := liveCounter(t, m2, "s"); got != 10 {
		t.Fatalf("post-rollback counter = %d, want 10", got)
	}

	// Recovery telemetry reached the registry.
	snap := reg.Snapshot()
	if snap["merlin_lifecycle_recovered_slots"] != 1 {
		t.Fatalf("merlin_lifecycle_recovered_slots = %d, want 1", snap["merlin_lifecycle_recovered_slots"])
	}
	if snap["merlin_lifecycle_recovered_deployments"] != 2 {
		t.Fatalf("merlin_lifecycle_recovered_deployments = %d, want 2",
			snap["merlin_lifecycle_recovered_deployments"])
	}
	if snap["merlin_journal_replayed_records_total"] == 0 {
		t.Fatal("merlin_journal_replayed_records_total = 0, want > 0")
	}
}

// TestRecoverDropsCandidate: a crash mid-promotion rolls back to the
// journaled incumbent — in-flight candidates are deliberately not persisted.
func TestRecoverDropsCandidate(t *testing.T) {
	dir := t.TempDir()
	jl := openJournal(t, dir)
	m := NewManager(Config{ShadowRuns: 8, CanaryRuns: 8, Journal: jl})
	if err := m.Deploy("s", progSource(countProg("v1"), nil)); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 1)
	if err := m.Deploy("s", progSource(countProg("v2"), nil)); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 3) // candidate mid-shadow at "crash" time
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	jl.Close()

	jl2 := openJournal(t, dir)
	defer jl2.Close()
	m2 := NewManager(Config{ShadowRuns: 8, CanaryRuns: 8, Journal: jl2})
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	st, err := m2.StatusOf("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.CandidateGeneration != 0 || st.Stage != StageLive || st.LiveGeneration != 1 {
		t.Fatalf("recovered status %s: want live gen 1 with the candidate dropped", st)
	}
	serveClean(t, m2, "s", 1)
	if got := liveCounter(t, m2, "s"); got != 5 {
		t.Fatalf("counter = %d, want 5 (4 pre-crash + 1 post-recovery)", got)
	}
}

// TestRecoverQuarantineBackoff: the watchdog ledger survives a restart with
// its remaining backoff intact — a recovered slot does not retry early, and
// retries resume (through ResolveSource) once the clock passes notBefore.
func TestRecoverQuarantineBackoff(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	dir := t.TempDir()
	jl := openJournal(t, dir)
	m := NewManager(Config{Journal: jl, Now: clock, BackoffBase: time.Minute, MaxRetries: 3})
	if err := m.Deploy("s", progSource(countProg("v1"), nil)); err != nil {
		t.Fatal(err)
	}
	failing := Source(func() (*core.Result, error) { return nil, fmt.Errorf("no such module") })
	if err := m.DeployWith("s", failing, DeployOptions{SourceDesc: "count"}); err == nil {
		t.Fatal("failing deploy must return its build error")
	}
	// attempts=0, notBefore = now+1min. Burn one retry so the ledger is
	// non-trivial: attempts=1, notBefore = now+2min.
	now = now.Add(61 * time.Second)
	m.Tick()
	st, _ := m.StatusOf("s")
	if st.Stage != StageQuarantined || st.Retries != 1 {
		t.Fatalf("pre-crash status %s: want quarantined with 1 retry consumed", st)
	}
	jl.Close()

	jl2 := openJournal(t, dir)
	defer jl2.Close()
	m2 := NewManager(Config{Journal: jl2, Now: clock, BackoffBase: time.Minute,
		MaxRetries: 3, ResolveSource: resolveCount})
	if _, err := m2.Recover(); err != nil {
		t.Fatal(err)
	}
	st, err := m2.StatusOf("s")
	if err != nil {
		t.Fatal(err)
	}
	if st.Stage != StageQuarantined || st.Retries != 1 {
		t.Fatalf("recovered status %s: want quarantined with 1 retry preserved", st)
	}

	// The recovered event ring contains the pre-crash retry; only count
	// retries fired after recovery.
	retries := countEvents(m2.Events("s"), EventRetry)

	// Backoff not yet expired: no retry fires.
	m2.Tick()
	if n := countEvents(m2.Events("s"), EventRetry); n != retries {
		t.Fatal("retry fired before the recovered backoff expired")
	}
	// Past notBefore the retry fires against the re-resolved source and the
	// rebuilt candidate stages.
	now = now.Add(3 * time.Minute)
	m2.Tick()
	if n := countEvents(m2.Events("s"), EventRetry); n != retries+1 {
		t.Fatalf("want exactly one retry after backoff expiry; events: %v", eventKinds(m2.Events("s")))
	}
	st, _ = m2.StatusOf("s")
	if st.CandidateGeneration == 0 {
		t.Fatalf("status %s: want a rebuilt candidate from the resolved source", st)
	}
}

// recordBoundaries walks the journal's length-prefixed framing and returns
// the byte offset after each record (plus offset 0).
func recordBoundaries(raw []byte) map[int]bool {
	bounds := map[int]bool{0: true}
	off := 0
	for off+8 <= len(raw) {
		n := int(binary.LittleEndian.Uint32(raw[off:]))
		end := off + 8 + n
		if end > len(raw) {
			break
		}
		bounds[end] = true
		off = end
	}
	return bounds
}

// TestRecoverTornJournalSweep is the crash-injection sweep: the journal of a
// deploy→promote session is truncated at every byte offset of its tail
// records (and sampled offsets elsewhere), and every truncation must still
// recover a serving manager — a torn tail is data loss back to the previous
// record, never a startup failure.
func TestRecoverTornJournalSweep(t *testing.T) {
	dir := t.TempDir()
	jl := openJournal(t, dir)
	m := NewManager(Config{ShadowRuns: 1, CanaryRuns: 1, MaxEvents: 4, Journal: jl})
	if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 1)
	if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 2) // clears shadow then canary
	if err := m.Promote("s", false); err != nil {
		t.Fatal(err)
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	jl.Close()

	raw, err := os.ReadFile(filepath.Join(dir, "journal.log"))
	if err != nil {
		t.Fatal(err)
	}
	if len(raw) < 64 {
		t.Fatalf("journal only %d bytes; scenario did not journal", len(raw))
	}
	bounds := recordBoundaries(raw)
	// Full-density sweep over the last two records (the promote + flush
	// transition records); sampled cuts plus every record boundary elsewhere.
	// lastTwo is the start offset of the second-to-last record.
	prev, cur := 0, 0
	for off := 0; off+8 <= len(raw); {
		n := int(binary.LittleEndian.Uint32(raw[off:]))
		end := off + 8 + n
		if end > len(raw) {
			break
		}
		prev, cur = cur, off
		off = end
	}
	lastTwo := prev
	_ = cur

	scratch := t.TempDir()
	cuts := map[int]bool{len(raw): true}
	for c := lastTwo; c < len(raw); c++ {
		cuts[c] = true
	}
	for c := 0; c < lastTwo; c += 5 {
		cuts[c] = true
	}
	for b := range bounds {
		cuts[b] = true
	}

	for cut := range cuts {
		if err := os.WriteFile(filepath.Join(scratch, "journal.log"), raw[:cut], 0o644); err != nil {
			t.Fatal(err)
		}
		jl2, err := journal.Open(scratch)
		if err != nil {
			t.Fatalf("cut %d: Open: %v", cut, err)
		}
		m2 := NewManager(Config{ShadowRuns: 1, CanaryRuns: 1, MaxEvents: 4, Journal: jl2})
		rs, err := m2.Recover()
		if err != nil {
			t.Fatalf("cut %d: Recover: %v", cut, err)
		}
		if !bounds[cut] && rs.CorruptRecords == 0 {
			t.Errorf("cut %d: mid-record truncation not counted corrupt (%s)", cut, rs)
		}
		if bounds[cut] && cut > 0 && rs.Slots != 1 {
			t.Errorf("cut %d: clean boundary truncation lost the slot (%s)", cut, rs)
		}
		if rs.Slots > 0 {
			serveClean(t, m2, "s", 1)
		}
		jl2.Close()
	}
}

// FuzzRecover feeds arbitrary bytes to the journal (and snapshot) files and
// proves Recover never panics and never refuses to start: at worst it comes
// up with a fresh ledger.
func FuzzRecover(f *testing.F) {
	seedDir := f.TempDir()
	{
		jl, err := journal.Open(seedDir)
		if err != nil {
			f.Fatal(err)
		}
		m := NewManager(Config{ShadowRuns: 1, CanaryRuns: 1, MaxEvents: 4, Journal: jl})
		_ = m.Deploy("s", progSource(countProg("v1"), nil))
		for i := 0; i < 3; i++ {
			ctx, pkt := packet(0)
			_, _, _ = m.Serve("s", ctx, pkt)
		}
		_ = m.Flush()
		_ = jl.Append([]byte(`{"Kind":"slot","Slot":{`), true) // framed but undecodable
		jl.Close()
	}
	raw, err := os.ReadFile(filepath.Join(seedDir, "journal.log"))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(raw)
	f.Add(raw[:len(raw)/2])
	f.Add([]byte{})
	f.Add([]byte("not a journal at all"))
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0}) // huge length prefix

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, "journal.log"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		// The same bytes double as the snapshot to fuzz that decode path too.
		if err := os.WriteFile(filepath.Join(dir, "snapshot.db"), data, 0o644); err != nil {
			t.Fatal(err)
		}
		jl, err := journal.Open(dir)
		if err != nil {
			t.Fatalf("Open must tolerate arbitrary journal bytes: %v", err)
		}
		defer jl.Close()
		m := NewManager(Config{Journal: jl})
		if _, err := m.Recover(); err != nil {
			t.Fatalf("Recover must degrade, not fail: %v", err)
		}
		for _, name := range m.Slots() {
			ctx, pkt := packet(0)
			_, _, _ = m.Serve(name, ctx, pkt) // must not panic
		}
	})
}

// TestJournalCompaction: CompactEvery bounds journal growth and the
// compacted snapshot alone still recovers the full state.
func TestJournalCompaction(t *testing.T) {
	dir := t.TempDir()
	jl := openJournal(t, dir)
	m := NewManager(Config{ShadowRuns: 1, CanaryRuns: 1, Journal: jl, CompactEvery: 3})
	if err := m.Deploy("s", progSource(countProg("v1"), nil)); err != nil {
		t.Fatal(err)
	}
	for gen := 2; gen <= 5; gen++ {
		if err := m.Deploy("s", progSource(countProg("vN"), nil)); err != nil {
			t.Fatal(err)
		}
		serveClean(t, m, "s", 2)
		if err := m.Promote("s", false); err != nil {
			t.Fatal(err)
		}
	}
	if n := jl.Records(); n >= 3+1 {
		t.Fatalf("journal holds %d records after compaction threshold 3", n)
	}
	if _, ok := jl.Snapshot(); !ok {
		t.Fatal("no snapshot written despite passing CompactEvery repeatedly")
	}
	served := uint64(0)
	if st, err := m.StatusOf("s"); err == nil {
		served = st.Served
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	jl.Close()

	jl2 := openJournal(t, dir)
	defer jl2.Close()
	m2 := NewManager(Config{ShadowRuns: 1, CanaryRuns: 1, Journal: jl2, CompactEvery: 3})
	rs, err := m2.Recover()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Slots != 1 {
		t.Fatalf("recover stats %s: want the slot back from snapshot+journal", rs)
	}
	st, _ := m2.StatusOf("s")
	if st.LiveGeneration != 5 || st.Served != served {
		t.Fatalf("recovered status %s: want live gen 5, served=%d", st, served)
	}
	serveClean(t, m2, "s", 1)
}

// TestCanaryFractionRouting: with CanaryFraction set, a deterministic
// hash-based share of live packets is answered by the canary — counted per
// slot — while divergence demotes the candidate exactly as without routing.
func TestCanaryFractionRouting(t *testing.T) {
	m := NewManager(Config{ShadowRuns: 1, CanaryRuns: 1 << 30})
	opts := DeployOptions{CanaryFraction: 0.5}
	if err := m.DeployWith("s", progSource(goodProg(), nil), opts); err != nil {
		t.Fatal(err)
	}
	if err := m.DeployWith("s", progSource(goodProg(), nil), opts); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 1) // clears shadow; candidate now in canary

	total, wantRouted := 200, 0
	for i := 0; i < total; i++ {
		pkt := make([]byte, 64)
		binary.LittleEndian.PutUint64(pkt, uint64(i)*0x9e3779b97f4a7c15)
		ctx := vm.BuildXDPContext(len(pkt))
		if routeHash(ctx, pkt) < opts.CanaryFraction {
			wantRouted++
		}
		rv, _, err := m.Serve("s", ctx, pkt)
		if err != nil || rv != 2 {
			t.Fatalf("serve %d: rv=%d err=%v", i, rv, err)
		}
	}
	if wantRouted == 0 || wantRouted == total {
		t.Fatalf("hash routed %d/%d packets; expected a non-degenerate split", wantRouted, total)
	}
	st, _ := m.StatusOf("s")
	if st.CanaryRouted != uint64(wantRouted) {
		t.Fatalf("CanaryRouted = %d, want %d (deterministic hash share)", st.CanaryRouted, wantRouted)
	}

	// Without a fraction, nothing is ever routed.
	m0 := NewManager(Config{ShadowRuns: 1, CanaryRuns: 1 << 30})
	if err := m0.Deploy("z", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	if err := m0.Deploy("z", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m0, "z", 50)
	st, _ = m0.StatusOf("z")
	if st.CanaryRouted != 0 {
		t.Fatalf("CanaryRouted = %d without CanaryFraction, want 0", st.CanaryRouted)
	}
}

// TestCanaryRoutingNeverBypassesGates: even at CanaryFraction 1.0 a
// diverging canary is demoted and the incumbent's verdict is the one served
// — routing decides whose answer wins only after every gate has passed.
func TestCanaryRoutingNeverBypassesGates(t *testing.T) {
	cond := &ebpf.Program{Name: "cond", Hook: ebpf.HookXDP, Insns: []ebpf.Instruction{
		ebpf.LoadMem(ebpf.SizeDW, ebpf.R6, ebpf.R1, 0),
		ebpf.LoadMem(ebpf.SizeB, ebpf.R7, ebpf.R6, 0),
		ebpf.Mov64Imm(ebpf.R0, 2),
		ebpf.JumpImm(ebpf.JumpNE, ebpf.R7, 0x55, 1),
		ebpf.Mov64Imm(ebpf.R0, 1), // diverge on pkt[0] == 0x55
		ebpf.Exit(),
	}}
	m := NewManager(Config{ShadowRuns: 1, CanaryRuns: 1 << 30})
	opts := DeployOptions{CanaryFraction: 1.0}
	if err := m.DeployWith("s", progSource(goodProg(), nil), opts); err != nil {
		t.Fatal(err)
	}
	if err := m.DeployWith("s", progSource(cond, nil), opts); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 3) // shadow + some routed canary serves on clean packets
	st, _ := m.StatusOf("s")
	if st.CanaryRouted == 0 {
		t.Fatal("fraction 1.0 routed nothing")
	}

	ctx, pkt := packet(0x55) // divergent input
	rv, _, err := m.Serve("s", ctx, pkt)
	if err != nil {
		t.Fatal(err)
	}
	if rv != 2 {
		t.Fatalf("diverging canary's verdict was served: rv=%d, want incumbent 2", rv)
	}
	if _, ok := findEvent(m.Events("s"), EventRejected); !ok {
		t.Fatalf("diverging canary not demoted; events: %v", eventKinds(m.Events("s")))
	}
	st, _ = m.StatusOf("s")
	if st.CandidateGeneration != 0 {
		t.Fatalf("status %s: candidate must be gone after divergence", st)
	}
}

// TestServeSteadyStateZeroAlloc pins the zero-copy mirroring guarantee: once
// the slot's scratch buffers are warm, a mirrored Serve allocates nothing.
func TestServeSteadyStateZeroAlloc(t *testing.T) {
	m := NewManager(Config{ShadowRuns: 1 << 30})
	if err := m.Deploy("s", progSource(goodProg(), goodProg())); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	ctx, pkt := packet(0)
	for i := 0; i < 4; i++ { // warm: staged→shadow transition + scratch growth
		if _, _, err := m.Serve("s", ctx, pkt); err != nil {
			t.Fatal(err)
		}
	}
	if n := testing.AllocsPerRun(200, func() {
		if _, _, err := m.Serve("s", ctx, pkt); err != nil {
			t.Fatal(err)
		}
	}); n != 0 {
		t.Fatalf("mirrored steady-state Serve allocates %v per run, want 0", n)
	}
}
