package lifecycle

import "testing"

func TestParseSlotStatusRoundTrip(t *testing.T) {
	cases := []SlotStatus{
		{Slot: "a", Stage: StageLive, LiveGeneration: 3, LiveNI: 17, Served: 120, Mirrored: 40},
		{Slot: "b", Stage: StageCanary, LiveGeneration: 1, LiveNI: 9, Served: 5, Mirrored: 5,
			CandidateGeneration: 2, CandidateStage: StageCanary, CandidateRuns: 7, Cleared: true},
		{Slot: "c", Stage: StageQuarantined, LiveGeneration: 2, LiveNI: 4,
			Retries: 2, Dead: true, CanaryRouted: 11},
		{Slot: "fresh", Stage: StageLive, LiveGeneration: 0, LiveNI: -1},
	}
	for _, want := range cases {
		got, err := ParseSlotStatus(want.String())
		if err != nil {
			t.Fatalf("ParseSlotStatus(%q): %v", want.String(), err)
		}
		if got.Slot != want.Slot || got.Stage != want.Stage ||
			got.LiveGeneration != want.LiveGeneration || got.LiveNI != want.LiveNI ||
			got.Served != want.Served || got.Mirrored != want.Mirrored ||
			got.CandidateGeneration != want.CandidateGeneration ||
			got.CandidateStage != want.CandidateStage ||
			got.CandidateRuns != want.CandidateRuns || got.Cleared != want.Cleared ||
			got.CanaryRouted != want.CanaryRouted ||
			got.Retries != want.Retries || got.Dead != want.Dead {
			t.Fatalf("round trip of %q lost fields:\n got %+v\nwant %+v", want.String(), got, want)
		}
	}
}

func TestParseSlotStatusRejectsGarbage(t *testing.T) {
	for _, line := range []string{
		"", "ok status", "journal=degraded", "slot=x stage=live live=banana",
		"stage=live live=gen1", "slot=x candidate=gen2",
	} {
		if _, err := ParseSlotStatus(line); err == nil {
			t.Fatalf("ParseSlotStatus(%q) accepted garbage", line)
		}
	}
	// Unknown fields from a newer worker are tolerated.
	st, err := ParseSlotStatus("slot=x stage=live live=gen2 ni=4 served=1 mirrored=0 future=42")
	if err != nil || st.LiveGeneration != 2 {
		t.Fatalf("forward-compat parse failed: %+v %v", st, err)
	}
}

func TestAbortDiscardsCandidate(t *testing.T) {
	m := NewManager(Config{ShadowRuns: 2, CanaryRuns: 2})
	if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	st, _ := m.StatusOf("s")
	if st.CandidateGeneration == 0 {
		t.Fatal("no candidate staged")
	}
	if err := m.Abort("s"); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	st, _ = m.StatusOf("s")
	if st.CandidateGeneration != 0 || st.Stage != StageLive {
		t.Fatalf("candidate survived abort: %+v", st)
	}
	found := false
	for _, ev := range m.Events("s") {
		if ev.Kind == EventAborted {
			found = true
		}
	}
	if !found {
		t.Fatal("no aborted event recorded")
	}
	// Nothing left to abort.
	if err := m.Abort("s"); err == nil {
		t.Fatal("second Abort succeeded with no candidate")
	}
	if err := m.Abort("nope"); err == nil {
		t.Fatal("Abort of unknown slot succeeded")
	}
	// The incumbent still serves.
	serveClean(t, m, "s", 1)
}
