package lifecycle

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSlotStatus is the inverse of SlotStatus.String: it parses one
// "slot=... stage=..." status line back into a SlotStatus. The fleet
// controller drives worker merlinds over the line protocol and reconciles
// against what `status` reports, so the textual status line is a wire format
// and this parser is its other half. Fields the line omits (the event ring
// itself) stay zero.
func ParseSlotStatus(line string) (SlotStatus, error) {
	var st SlotStatus
	st.LiveNI = -1
	fields := strings.Fields(strings.TrimSpace(line))
	if len(fields) == 0 || !strings.HasPrefix(fields[0], "slot=") {
		return st, fmt.Errorf("lifecycle: not a slot status line: %q", line)
	}
	for _, f := range fields {
		key, val, ok := strings.Cut(f, "=")
		if !ok {
			return st, fmt.Errorf("lifecycle: bad status field %q in %q", f, line)
		}
		var err error
		switch key {
		case "slot":
			st.Slot = val
		case "stage":
			st.Stage = Stage(val)
		case "live":
			st.LiveGeneration, err = parseGen(val)
		case "ni":
			st.LiveNI, err = strconv.Atoi(val)
		case "served":
			st.Served, err = strconv.ParseUint(val, 10, 64)
		case "mirrored":
			st.Mirrored, err = strconv.ParseUint(val, 10, 64)
		case "candidate":
			gen, stage, ok := strings.Cut(val, "/")
			if !ok {
				return st, fmt.Errorf("lifecycle: bad candidate field %q", f)
			}
			st.CandidateGeneration, err = parseGen(gen)
			st.CandidateStage = Stage(stage)
		case "runs":
			st.CandidateRuns, err = strconv.Atoi(val)
		case "cleared":
			st.Cleared, err = strconv.ParseBool(val)
		case "canary_routed":
			st.CanaryRouted, err = strconv.ParseUint(val, 10, 64)
		case "retries":
			st.Retries, err = strconv.Atoi(val)
		case "dead":
			st.Dead, err = strconv.ParseBool(val)
		case "eseq":
			st.EventSeq, err = strconv.Atoi(val)
		default:
			// Unknown fields are tolerated: newer workers may report more.
		}
		if err != nil {
			return st, fmt.Errorf("lifecycle: bad status field %q: %v", f, err)
		}
	}
	if st.Slot == "" {
		return st, fmt.Errorf("lifecycle: status line missing slot name: %q", line)
	}
	return st, nil
}

// parseGen parses a "genN" token.
func parseGen(s string) (int, error) {
	rest, ok := strings.CutPrefix(s, "gen")
	if !ok {
		return 0, fmt.Errorf("want genN, got %q", s)
	}
	return strconv.Atoi(rest)
}
