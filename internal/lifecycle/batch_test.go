package lifecycle

import (
	"testing"

	"merlin/internal/ebpf"
	"merlin/internal/vm"
)

// ServeBatch must be observationally identical to the same packets pushed
// through Serve one at a time: per-packet verdicts, stats and faults, the
// served/mirrored counters, the event stream, helper state, and the caller's
// buffers after the run. These tests drive both entry points on twin
// managers over every interesting slot shape — clean steady state, helper
// nondeterminism, mid-batch degradation to a fallback, unrecoverable
// faults, and a candidate being mirrored — and diff everything.

// prandVerdictProg returns a per-packet varying verdict (prandom & 1) + 2,
// so helper-stream carryover across a batch is observable in the results.
func prandVerdictProg() *ebpf.Program {
	return &ebpf.Program{Name: "prand", Hook: ebpf.HookXDP, Insns: []ebpf.Instruction{
		ebpf.Call(7), // get_prandom_u32
		ebpf.ALU64Imm(ebpf.ALUAnd, ebpf.R0, 1),
		ebpf.ALU64Imm(ebpf.ALUAdd, ebpf.R0, 2),
		ebpf.Exit(),
	}}
}

// cloneTraffic deep-copies a packet list and builds matching XDP contexts,
// so each manager mutates its own buffers.
func cloneTraffic(pkts [][]byte) (ctxs, out [][]byte) {
	ctxs = make([][]byte, len(pkts))
	out = make([][]byte, len(pkts))
	for i, p := range pkts {
		out[i] = append([]byte(nil), p...)
		ctxs[i] = vm.BuildXDPContext(len(p))
	}
	return ctxs, out
}

// runBatchVsSequential deploys identical state into twin managers, pushes
// pkts through Serve on one and a single ServeBatch on the other, and
// asserts every observable output matches.
func runBatchVsSequential(t *testing.T, cfg Config, deploy func(*Manager)) {
	t.Helper()
	// Packet 3 carries the poison byte (0x55); the rest are clean and
	// pairwise distinct so buffer restoration mix-ups would be visible.
	var pkts [][]byte
	for i := 0; i < 8; i++ {
		_, pkt := packet(byte(i))
		if i == 3 {
			pkt[0] = 0x55
		}
		pkts = append(pkts, pkt)
	}

	seq := NewManager(cfg)
	bat := NewManager(cfg)
	deploy(seq)
	deploy(bat)

	ctxS, pktS := cloneTraffic(pkts)
	ctxB, pktB := cloneTraffic(pkts)

	type result struct {
		rv  int64
		st  vm.Stats
		err error
	}
	want := make([]result, len(pkts))
	wantFaults := 0
	for i := range pkts {
		want[i].rv, want[i].st, want[i].err = seq.Serve("s", ctxS[i], pktS[i])
		if want[i].err != nil {
			wantFaults++
		}
	}

	var out vm.Batch
	faults, err := bat.ServeBatch("s", ctxB, pktB, &out)
	if err != nil {
		t.Fatalf("ServeBatch: %v", err)
	}
	if faults != wantFaults {
		t.Errorf("faults = %d, want %d", faults, wantFaults)
	}
	for i := range pkts {
		if out.RV[i] != want[i].rv {
			t.Errorf("pkt %d: rv %d (batch) vs %d (sequential)", i, out.RV[i], want[i].rv)
		}
		if out.Stats[i] != want[i].st {
			t.Errorf("pkt %d: stats diverged\nbatch %+v\nseq   %+v", i, out.Stats[i], want[i].st)
		}
		be, se := out.Errs[i], want[i].err
		if (be == nil) != (se == nil) || (be != nil && be.Error() != se.Error()) {
			t.Errorf("pkt %d: err %v (batch) vs %v (sequential)", i, be, se)
		}
		if string(ctxB[i]) != string(ctxS[i]) || string(pktB[i]) != string(pktS[i]) {
			t.Errorf("pkt %d: post-run buffers diverged", i)
		}
	}

	ss, bs := seq.slots["s"], bat.slots["s"]
	if bs.served != ss.served {
		t.Errorf("served = %d, want %d", bs.served, ss.served)
	}
	if bs.mirrored != ss.mirrored {
		t.Errorf("mirrored = %d, want %d", bs.mirrored, ss.mirrored)
	}
	if bs.canaryRouted != ss.canaryRouted {
		t.Errorf("canaryRouted = %d, want %d", bs.canaryRouted, ss.canaryRouted)
	}
	se, be := seq.Events("s"), bat.Events("s")
	if len(se) != len(be) {
		t.Fatalf("event streams diverged:\nbatch %v\nseq   %v", eventKinds(be), eventKinds(se))
	}
	for i := range se {
		if se[i] != be[i] {
			t.Errorf("event %d diverged:\nbatch %+v\nseq   %+v", i, be[i], se[i])
		}
	}
	srng, sk := ss.live.machine.HelperState()
	brng, bk := bs.live.machine.HelperState()
	if srng != brng || sk != bk {
		t.Errorf("live helper state diverged: rng %#x/%#x ktime %d/%d", brng, srng, bk, sk)
	}
}

func TestServeBatchMatchesSequentialClean(t *testing.T) {
	runBatchVsSequential(t, Config{}, func(m *Manager) {
		if err := m.Deploy("s", progSource(goodProg(), goodProg())); err != nil {
			t.Fatal(err)
		}
	})
}

func TestServeBatchMatchesSequentialHelperState(t *testing.T) {
	// The prandom verdict chains packet-to-packet through the live machine's
	// helper state, so any reordering or duplicated run inside the batch
	// path shows up as a wrong verdict.
	runBatchVsSequential(t, Config{}, func(m *Manager) {
		if err := m.Deploy("s", progSource(prandVerdictProg(), nil)); err != nil {
			t.Fatal(err)
		}
	})
}

func TestServeBatchMidBatchDegradeToBaseline(t *testing.T) {
	// Packet 3 faults the poison incumbent mid-batch; the slot must degrade
	// to the baseline, answer packet 3 from it, and replay the batch tail
	// against it — identically to the sequential path.
	runBatchVsSequential(t, Config{}, func(m *Manager) {
		if err := m.Deploy("s", progSource(poisonProg(), goodProg())); err != nil {
			t.Fatal(err)
		}
	})
}

func TestServeBatchMidBatchDegradeToLastGood(t *testing.T) {
	runBatchVsSequential(t, Config{}, func(m *Manager) {
		if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
			t.Fatal(err)
		}
		if err := m.Deploy("s", progSource(poisonProg(), nil)); err != nil {
			t.Fatal(err)
		}
		if err := m.Promote("s", true); err != nil {
			t.Fatal(err)
		}
	})
}

func TestServeBatchNoFallback(t *testing.T) {
	// Every packet faults and there is nothing to degrade to: the batch
	// reports every fault, the live program stays, and the event ledger
	// matches the sequential one.
	runBatchVsSequential(t, Config{}, func(m *Manager) {
		if err := m.Deploy("s", progSource(faultingProg(), nil)); err != nil {
			t.Fatal(err)
		}
	})
}

func TestServeBatchMirrorsCandidate(t *testing.T) {
	// A candidate in shadow forces the per-packet path; mirroring, stage
	// advancement and gating must be indistinguishable from Serve.
	runBatchVsSequential(t, Config{ShadowRuns: 3, CanaryRuns: 3}, func(m *Manager) {
		if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
			t.Fatal(err)
		}
		if err := m.Deploy("s", progSource(slowProg(4), nil)); err != nil {
			t.Fatal(err)
		}
	})
}

func TestServeBatchUnknownSlot(t *testing.T) {
	m := NewManager(Config{})
	var out vm.Batch
	if _, err := m.ServeBatch("nope", nil, nil, &out); err == nil {
		t.Fatal("expected unknown-slot error")
	}
}

// TestServeBatchSteadyStateAllocs pins the steady-state batch serve path to
// zero per-packet heap allocations once the slot's scratch buffers are warm.
func TestServeBatchSteadyStateAllocs(t *testing.T) {
	m := NewManager(Config{})
	if err := m.Deploy("s", progSource(goodProg(), goodProg())); err != nil {
		t.Fatal(err)
	}
	var pkts [][]byte
	for i := 0; i < 32; i++ {
		_, pkt := packet(byte(i))
		pkts = append(pkts, pkt)
	}
	ctxs, pkts := cloneTraffic(pkts)
	var out vm.Batch
	if _, err := m.ServeBatch("s", ctxs, pkts, &out); err != nil {
		t.Fatal(err) // warm the scratch buffers
	}
	avg := testing.AllocsPerRun(50, func() {
		if _, err := m.ServeBatch("s", ctxs, pkts, &out); err != nil {
			t.Fatal(err)
		}
	})
	if avg != 0 {
		t.Fatalf("steady-state ServeBatch allocates: %.1f allocs/batch", avg)
	}
}
