package lifecycle

import (
	"reflect"
	"strings"
	"testing"

	"merlin/internal/metrics"
)

// sumEventCounters totals every merlin_lifecycle_events_total series of one
// slot from a registry snapshot.
func sumEventCounters(snap map[string]int64, slot string) int64 {
	var sum int64
	for key, v := range snap {
		if strings.HasPrefix(key, "merlin_lifecycle_events_total{") &&
			strings.Contains(key, `slot="`+slot+`"`) {
			sum += v
		}
	}
	return sum
}

// TestMetricsDrainDoesNotPerturbEvents is the regression test for the
// export path: draining the event ring into the registry must not consume,
// reorder or truncate it, and draining twice must count nothing twice.
func TestMetricsDrainDoesNotPerturbEvents(t *testing.T) {
	reg := metrics.New()
	m := NewManager(Config{ShadowRuns: 2, CanaryRuns: 2, Metrics: reg})
	if err := m.Deploy("s", progSource(slowProg(50), nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 6) // staged → shadow → canary → cleared
	if err := m.Promote("s", false); err != nil {
		t.Fatal(err)
	}

	before := m.Events("s")
	if len(before) == 0 {
		t.Fatal("no events to drain")
	}

	m.CollectMetrics()
	text1 := reg.Text()
	evs1 := m.Events("s")

	m.CollectMetrics()
	text2 := reg.Text()
	evs2 := m.Events("s")

	if !reflect.DeepEqual(before, evs1) || !reflect.DeepEqual(evs1, evs2) {
		t.Fatalf("export perturbed event history:\nbefore: %v\nafter1: %v\nafter2: %v",
			eventKinds(before), eventKinds(evs1), eventKinds(evs2))
	}
	if text1 != text2 {
		t.Fatalf("second export changed counter values (double-counted drain):\n--- first\n%s\n--- second\n%s",
			text1, text2)
	}

	st, err := m.StatusOf("s")
	if err != nil {
		t.Fatal(err)
	}
	snap := reg.Snapshot()
	if got := sumEventCounters(snap, "s"); got != int64(st.EventSeq) {
		t.Fatalf("event counters total %d, want %d (EventSeq)", got, st.EventSeq)
	}
}

// TestMetricsSurviveRingEviction pins the no-lost-events guarantee: when the
// bounded ring evicts faster than anything scrapes, evicted events must
// already be in the registry.
func TestMetricsSurviveRingEviction(t *testing.T) {
	reg := metrics.New()
	m := NewManager(Config{ShadowRuns: 1, CanaryRuns: 1, MaxEvents: 3, Metrics: reg})
	if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	// Each redeploy+serve cycle emits several events through a 3-slot ring.
	for i := 0; i < 8; i++ {
		if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
			t.Fatal(err)
		}
		serveClean(t, m, "s", 3)
		if err := m.Promote("s", true); err != nil {
			t.Fatal(err)
		}
	}

	st, err := m.StatusOf("s")
	if err != nil {
		t.Fatal(err)
	}
	if len(st.Events) >= st.EventSeq {
		t.Fatalf("test did not evict: ring %d, total %d", len(st.Events), st.EventSeq)
	}

	m.CollectMetrics()
	snap := reg.Snapshot()
	if got := sumEventCounters(snap, "s"); got != int64(st.EventSeq) {
		t.Fatalf("lost events: counters total %d, want %d (ring holds %d)",
			got, st.EventSeq, len(st.Events))
	}
}

// TestServeMetricsCounters checks the hot-path counters against the manager's
// own bookkeeping and the registry's divergence/canary series.
func TestServeMetricsCounters(t *testing.T) {
	reg := metrics.New()
	m := NewManager(Config{ShadowRuns: 2, CanaryRuns: 4, Metrics: reg})
	if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	if err := m.Deploy("s", progSource(goodProg(), nil)); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 5) // 2 shadow + 3 canary mirrored runs
	m.CollectMetrics()
	snap := reg.Snapshot()
	if got := snap[`merlin_lifecycle_served_total{slot="s"}`]; got != 5 {
		t.Fatalf("served counter = %d, want 5", got)
	}
	if got := snap[`merlin_lifecycle_mirrored_total{slot="s"}`]; got != 5 {
		t.Fatalf("mirrored counter = %d, want 5", got)
	}
	if got := snap[`merlin_lifecycle_canary_cycles_count{slot="s"}`]; got != 3 {
		t.Fatalf("canary cycle observations = %d, want 3", got)
	}

	// A divergent candidate bumps the divergence counter on rejection.
	if err := m.Deploy("s", progSource(divergentProg(), nil)); err != nil {
		t.Fatal(err)
	}
	serveClean(t, m, "s", 1)
	m.CollectMetrics()
	snap = reg.Snapshot()
	if got := snap[`merlin_lifecycle_mirror_divergence_total{slot="s"}`]; got != 1 {
		t.Fatalf("divergence counter = %d, want 1", got)
	}
	if got := snap[`merlin_lifecycle_events_total{kind="rejected",slot="s"}`]; got != 1 {
		t.Fatalf("rejected event counter = %d, want 1", got)
	}
}
