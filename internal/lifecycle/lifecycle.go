// Package lifecycle manages the runtime life of optimized eBPF programs.
// Merlin's bytecode tier rewrites programs just before the bpf() syscall;
// this package models what happens after it: named program slots whose
// freshly built candidates move staged → shadow → canary → live, with the
// incumbent vm.Machine serving every packet until the candidate is
// atomically promoted. In shadow and canary the candidate runs on mirrored
// copies of the live traffic and is rejected on any return-value divergence,
// runtime fault, or cycle-cost regression beyond a configurable slack — the
// online continuation of the build-time differential validation in
// internal/guard. A per-slot watchdog quarantines deployments that fault or
// blow their instruction/cycle budget at any stage and rebuilds them with
// exponential backoff, degrading to the last-known-good program or the clang
// baseline so the slot never stops serving.
package lifecycle

import (
	"fmt"
	"sync"
	"time"

	"merlin/internal/core"
	"merlin/internal/ebpf"
	"merlin/internal/ir"
	"merlin/internal/metrics"
	"merlin/internal/vm"
)

// Config parameterizes a Manager.
type Config struct {
	// ShadowRuns / CanaryRuns are the clean mirrored runs a candidate needs
	// to clear each stage (default 32 each).
	ShadowRuns int
	CanaryRuns int
	// CycleSlack is the tolerated relative mean cycle-cost regression of the
	// candidate over the canary window (default 0.10 = 10%).
	CycleSlack float64
	// InsnBudget / CycleBudget cap a single run of any deployment — live or
	// mirrored. Exceeding either quarantines a candidate and degrades an
	// incumbent. Zero disables the respective cap.
	InsnBudget  uint64
	CycleBudget uint64
	// MaxRetries bounds the watchdog's rebuild attempts per quarantine
	// episode (default 3).
	MaxRetries int
	// BackoffBase is the first rebuild delay; it doubles per attempt
	// (default 100ms).
	BackoffBase time.Duration
	// AutoPromote hot-swaps a candidate as soon as it clears canary instead
	// of waiting for an explicit Promote.
	AutoPromote bool
	// VM configures every machine the manager instantiates.
	VM vm.Config
	// Now is the watchdog clock (default time.Now); tests inject a fake.
	Now func() time.Time
	// MaxEvents caps each slot's event ring (default 64).
	MaxEvents int
	// Metrics, when set, receives the manager's telemetry: per-slot
	// serve/mirror/divergence counters, canary cycle histograms, gauges,
	// and per-EventKind counters drained losslessly from the event rings.
	// Nil disables recording. Pair it with VM.Metrics to also capture
	// per-run machine telemetry.
	Metrics *metrics.Registry
}

func (c Config) withDefaults() Config {
	if c.ShadowRuns <= 0 {
		c.ShadowRuns = 32
	}
	if c.CanaryRuns <= 0 {
		c.CanaryRuns = 32
	}
	if c.CycleSlack <= 0 {
		c.CycleSlack = 0.10
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 64
	}
	return c
}

// Source produces a deployable build. The watchdog re-invokes it on every
// quarantine retry, so a Source must be safe to call repeatedly.
type Source func() (*core.Result, error)

// ModuleSource adapts an IR module to a Source via core.BuildForDeploy.
func ModuleSource(mod *ir.Module, fnName string, opts core.Options) Source {
	return func() (*core.Result, error) {
		return core.BuildForDeploy(mod, fnName, opts)
	}
}

// deployment is one build loaded into a machine. The machine accumulates
// warm state (maps, caches) across runs, so a promoted candidate has already
// soaked on mirrored traffic.
type deployment struct {
	prog    *ebpf.Program
	machine *vm.Machine
	gen     int
	stage   Stage
	cleared bool
	// Clean mirrored runs in the current stage, plus the cycle sums backing
	// the canary regression gate.
	runs       int
	incCycles  uint64
	candCycles uint64
}

// quarantineState is the watchdog's per-slot backoff ledger.
type quarantineState struct {
	attempts  int
	notBefore time.Time
	dead      bool
	reason    string
}

// slot is one named program slot.
type slot struct {
	name    string
	source  Source
	nextGen int

	live     *deployment // serving; nil until the first deploy
	lastGood *deployment // previous incumbent, for rollback
	baseline *deployment // clang-only fallback from the last good build
	cand     *deployment // staged/shadow/canary candidate

	quarantine *quarantineState

	served   uint64
	mirrored uint64
	events   []Event
	seq      int

	// met holds the slot's registry handles (nil when metrics are off);
	// metricsSeq is the drain watermark — the highest event Seq already
	// counted into the registry.
	met        *slotMetrics
	metricsSeq int
}

// Manager owns a set of named program slots. All methods are safe for
// concurrent use; the hot-swap in Promote is a single pointer update under
// the manager lock, so there is no serving gap.
type Manager struct {
	mu    sync.Mutex
	cfg   Config
	slots map[string]*slot
	order []string
}

// NewManager returns a Manager with cfg's zero fields defaulted.
func NewManager(cfg Config) *Manager {
	return &Manager{cfg: cfg.withDefaults(), slots: map[string]*slot{}}
}

// Deploy builds src into a fresh candidate for the named slot (creating the
// slot if needed). The first deployment of a slot goes live immediately —
// there is no incumbent to mirror against; every later one is staged and
// must earn promotion through shadow and canary. Build-contained pass
// failures are surfaced as EventBuildFault events; an outright build failure
// quarantines the slot for a watchdog retry.
func (m *Manager) Deploy(name string, src Source) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.slots[name]
	if s == nil {
		s = &slot{name: name}
		if m.cfg.Metrics != nil {
			s.met = newSlotMetrics(m.cfg.Metrics, name)
		}
		m.slots[name] = s
		m.order = append(m.order, name)
	}
	s.source = src
	s.quarantine = nil
	s.cand = nil
	return m.buildCandidateLocked(s)
}

// buildCandidateLocked runs the slot's source and stages the result.
func (m *Manager) buildCandidateLocked(s *slot) error {
	res, err := s.source()
	if err != nil {
		m.quarantineLocked(s, StageStaged, "", fmt.Sprintf("build failed: %v", err))
		return fmt.Errorf("lifecycle: slot %s: build: %w", s.name, err)
	}
	for _, pf := range res.PassFailures {
		m.eventLocked(s, Event{Kind: EventBuildFault, Stage: StageStaged,
			Generation: s.nextGen + 1, Detail: pf.String()})
	}
	if len(res.Culprits) > 0 {
		m.eventLocked(s, Event{Kind: EventBuildFault, Stage: StageStaged,
			Generation: s.nextGen + 1,
			Detail:     fmt.Sprintf("verifier culprits %v (%s fallback)", res.Culprits, res.FellBack)})
	}

	s.nextGen++
	d, err := m.newDeployment(res.Prog, s.nextGen)
	if err != nil {
		m.quarantineLocked(s, StageStaged, "", fmt.Sprintf("load failed: %v", err))
		return fmt.Errorf("lifecycle: slot %s: load: %w", s.name, err)
	}
	if res.Baseline != nil {
		// The clang baseline is the slot's fallback of last resort; keep the
		// one from the most recent successful build.
		if bl, err := m.newDeployment(res.Baseline, 0); err == nil {
			s.baseline = bl
		}
	}

	if s.live == nil {
		s.live = d
		d.stage = StageLive
		m.eventLocked(s, Event{Kind: EventPromoted, Stage: StageLive, Generation: d.gen,
			Detail: "initial deployment, no incumbent to shadow"})
		return nil
	}
	d.stage = StageStaged
	s.cand = d
	m.eventLocked(s, Event{Kind: EventDeployed, Stage: StageStaged, Generation: d.gen,
		Detail: fmt.Sprintf("NI %d vs live NI %d", d.prog.NI(), s.live.prog.NI())})
	return nil
}

func (m *Manager) newDeployment(prog *ebpf.Program, gen int) (*deployment, error) {
	mach, err := vm.New(prog, m.cfg.VM)
	if err != nil {
		return nil, err
	}
	return &deployment{prog: prog, machine: mach, gen: gen}, nil
}

// Serve runs one unit of traffic through the slot's live program and — when
// a candidate is in shadow or canary — mirrors a pristine copy of the input
// through the candidate, replaying the incumbent's helper-nondeterminism
// stream so divergence is attributable to the code. The incumbent's verdict
// is always the one returned; an incumbent fault degrades the slot to the
// last-known-good program or the baseline and answers from there.
func (m *Manager) Serve(name string, ctx, pkt []byte) (int64, vm.Stats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.slots[name]
	if s == nil {
		return 0, vm.Stats{}, fmt.Errorf("lifecycle: unknown slot %q", name)
	}
	m.retryLocked(s)
	if s.live == nil {
		return 0, vm.Stats{}, fmt.Errorf("lifecycle: slot %q has nothing deployed", name)
	}

	if s.cand != nil && s.cand.stage == StageStaged {
		s.cand.stage = StageShadow
		m.eventLocked(s, Event{Kind: EventStageAdvance, Stage: StageShadow,
			Generation: s.cand.gen, Detail: "staged → shadow"})
	}
	mirroring := s.cand != nil &&
		(s.cand.stage == StageShadow || s.cand.stage == StageCanary)

	// Programs rewrite ctx/pkt in place, so the mirror (and a fallback
	// replay after an incumbent fault) needs pristine copies taken before
	// the incumbent runs.
	var mctx, mpkt []byte
	if mirroring || s.lastGood != nil || s.baseline != nil {
		mctx = append([]byte(nil), ctx...)
		mpkt = append([]byte(nil), pkt...)
	}
	var rng, ktime uint64
	if mirroring {
		rng, ktime = s.live.machine.HelperState()
	}

	rv, st, err := s.live.machine.Run(ctx, pkt)
	if err != nil || m.overBudget(st) {
		return m.degradeLocked(s, mctx, mpkt, err, st)
	}
	s.served++
	s.met.servedInc()

	if mirroring {
		cand := s.cand
		cand.machine.SetHelperState(rng, ktime)
		crv, cst, cerr := cand.machine.Run(mctx, mpkt)
		s.mirrored++
		s.met.mirroredInc()
		if cand.stage == StageCanary {
			s.met.observeCanaryCycles(cst.Cycles)
		}
		switch {
		case cerr != nil:
			kind, detail := classifyFault(cerr, cst)
			m.quarantineLocked(s, cand.stage, kind, detail)
		case m.overBudget(cst):
			m.quarantineLocked(s, cand.stage, FaultBudget,
				fmt.Sprintf("budget blown: %d insns / %d cycles", cst.Instructions, cst.Cycles))
		case crv != rv:
			s.met.divergenceInc()
			m.rejectLocked(s, fmt.Sprintf("return divergence: incumbent %d, candidate %d", rv, crv))
		default:
			cand.runs++
			cand.incCycles += st.Cycles
			cand.candCycles += cst.Cycles
			m.advanceLocked(s)
		}
	}
	return rv, st, nil
}

// advanceLocked moves a clean candidate through the stage gates.
func (m *Manager) advanceLocked(s *slot) {
	c := s.cand
	switch c.stage {
	case StageShadow:
		if c.runs >= m.cfg.ShadowRuns {
			c.stage = StageCanary
			c.runs, c.incCycles, c.candCycles = 0, 0, 0
			m.eventLocked(s, Event{Kind: EventStageAdvance, Stage: StageCanary,
				Generation: c.gen, Detail: "shadow → canary"})
		}
	case StageCanary:
		if c.runs < m.cfg.CanaryRuns || c.cleared {
			return
		}
		limit := float64(c.incCycles) * (1 + m.cfg.CycleSlack)
		if float64(c.candCycles) > limit {
			m.rejectLocked(s, fmt.Sprintf(
				"cycle regression: candidate %d vs incumbent %d cycles over %d runs (slack %.0f%%)",
				c.candCycles, c.incCycles, c.runs, m.cfg.CycleSlack*100))
			return
		}
		c.cleared = true
		m.eventLocked(s, Event{Kind: EventStageAdvance, Stage: StageCanary,
			Generation: c.gen,
			Detail: fmt.Sprintf("canary cleared (%d vs %d cycles); promotable",
				c.candCycles, c.incCycles)})
		if m.cfg.AutoPromote {
			m.promoteLocked(s, "auto-promote after canary")
		}
	}
}

// Promote atomically hot-swaps the slot's candidate to live. Unless force is
// set the candidate must have cleared canary. The previous incumbent is kept
// as last-known-good for Rollback.
func (m *Manager) Promote(name string, force bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.slots[name]
	if s == nil {
		return fmt.Errorf("lifecycle: unknown slot %q", name)
	}
	if s.cand == nil {
		return fmt.Errorf("lifecycle: slot %q has no candidate to promote", name)
	}
	if !s.cand.cleared && !force {
		return fmt.Errorf("lifecycle: slot %q candidate gen %d has not cleared canary (stage %s, %d clean runs)",
			name, s.cand.gen, s.cand.stage, s.cand.runs)
	}
	why := "promoted after canary"
	if !s.cand.cleared {
		why = "forced promotion"
	}
	m.promoteLocked(s, why)
	return nil
}

func (m *Manager) promoteLocked(s *slot, why string) {
	s.lastGood = s.live
	s.live = s.cand
	s.live.stage = StageLive
	s.cand = nil
	s.quarantine = nil
	m.eventLocked(s, Event{Kind: EventPromoted, Stage: StageLive,
		Generation: s.live.gen, Detail: why})
}

// Rollback restores the previous live program and discards any in-flight
// candidate.
func (m *Manager) Rollback(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.slots[name]
	if s == nil {
		return fmt.Errorf("lifecycle: unknown slot %q", name)
	}
	if s.lastGood == nil {
		return fmt.Errorf("lifecycle: slot %q has no previous program to roll back to", name)
	}
	from := s.live.gen
	s.live = s.lastGood
	s.live.stage = StageLive
	s.lastGood = nil
	s.cand = nil
	s.quarantine = nil
	m.eventLocked(s, Event{Kind: EventRolledBack, Stage: StageLive, Generation: s.live.gen,
		Detail: fmt.Sprintf("gen %d → gen %d", from, s.live.gen)})
	return nil
}

// rejectLocked discards the candidate for a deterministic failure
// (divergence or cycle regression): rebuilding the same module would produce
// the same program, so the watchdog does not retry.
func (m *Manager) rejectLocked(s *slot, detail string) {
	m.eventLocked(s, Event{Kind: EventRejected, Stage: s.cand.stage,
		Generation: s.cand.gen, Detail: detail})
	s.cand = nil
}

// Tick gives quarantined slots a chance to retry without waiting for
// traffic.
func (m *Manager) Tick() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, name := range m.order {
		m.retryLocked(m.slots[name])
	}
}

// Slots lists the slot names in creation order.
func (m *Manager) Slots() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

// Status reports a snapshot of every slot in creation order.
func (m *Manager) Status() []SlotStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SlotStatus, 0, len(m.order))
	for _, name := range m.order {
		out = append(out, m.statusLocked(m.slots[name]))
	}
	return out
}

// StatusOf reports a snapshot of one slot.
func (m *Manager) StatusOf(name string) (SlotStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.slots[name]
	if s == nil {
		return SlotStatus{}, fmt.Errorf("lifecycle: unknown slot %q", name)
	}
	return m.statusLocked(s), nil
}

func (m *Manager) statusLocked(s *slot) SlotStatus {
	st := SlotStatus{
		Slot:           s.name,
		Stage:          StageLive,
		LiveGeneration: 0,
		LiveNI:         -1,
		Served:         s.served,
		Mirrored:       s.mirrored,
		EventSeq:       s.seq,
		Events:         append([]Event(nil), s.events...),
	}
	if s.live != nil {
		st.LiveGeneration = s.live.gen
		st.LiveNI = s.live.prog.NI()
	}
	if s.cand != nil {
		st.Stage = s.cand.stage
		st.CandidateGeneration = s.cand.gen
		st.CandidateStage = s.cand.stage
		st.CandidateRuns = s.cand.runs
		st.Cleared = s.cand.cleared
	} else if s.quarantine != nil {
		st.Stage = StageQuarantined
	}
	if q := s.quarantine; q != nil {
		st.Retries = q.attempts
		st.Dead = q.dead
	}
	return st
}

// Events returns a copy of the slot's event ring (oldest first).
func (m *Manager) Events(name string) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.slots[name]
	if s == nil {
		return nil
	}
	return append([]Event(nil), s.events...)
}

func (m *Manager) eventLocked(s *slot, ev Event) {
	s.seq++
	ev.Seq = s.seq
	ev.Slot = s.name
	s.events = append(s.events, ev)
	if n := len(s.events); n > m.cfg.MaxEvents {
		// Drain the events about to fall off the ring into the metrics
		// registry first: the bounded ring may evict faster than anything
		// scrapes, and the registry must never lose an event. The watermark
		// keeps a later CollectMetrics from counting them again.
		m.drainEventsLocked(s, s.events[:n-m.cfg.MaxEvents])
		s.events = append(s.events[:0:0], s.events[n-m.cfg.MaxEvents:]...)
	}
}
