// Package lifecycle manages the runtime life of optimized eBPF programs.
// Merlin's bytecode tier rewrites programs just before the bpf() syscall;
// this package models what happens after it: named program slots whose
// freshly built candidates move staged → shadow → canary → live, with the
// incumbent vm.Machine serving every packet until the candidate is
// atomically promoted. In shadow and canary the candidate runs on mirrored
// copies of the live traffic and is rejected on any return-value divergence,
// runtime fault, or cycle-cost regression beyond a configurable slack — the
// online continuation of the build-time differential validation in
// internal/guard. A per-slot watchdog quarantines deployments that fault or
// blow their instruction/cycle budget at any stage and rebuilds them with
// exponential backoff, degrading to the last-known-good program or the clang
// baseline so the slot never stops serving.
package lifecycle

import (
	"fmt"
	"sync"
	"time"

	"merlin/internal/core"
	"merlin/internal/ebpf"
	"merlin/internal/ir"
	"merlin/internal/journal"
	"merlin/internal/metrics"
	"merlin/internal/vm"
)

// Config parameterizes a Manager.
type Config struct {
	// ShadowRuns / CanaryRuns are the clean mirrored runs a candidate needs
	// to clear each stage (default 32 each).
	ShadowRuns int
	CanaryRuns int
	// CycleSlack is the tolerated relative mean cycle-cost regression of the
	// candidate over the canary window (default 0.10 = 10%).
	CycleSlack float64
	// InsnBudget / CycleBudget cap a single run of any deployment — live or
	// mirrored. Exceeding either quarantines a candidate and degrades an
	// incumbent. Zero disables the respective cap.
	InsnBudget  uint64
	CycleBudget uint64
	// MaxRetries bounds the watchdog's rebuild attempts per quarantine
	// episode (default 3).
	MaxRetries int
	// BackoffBase is the first rebuild delay; it doubles per attempt
	// (default 100ms).
	BackoffBase time.Duration
	// AutoPromote hot-swaps a candidate as soon as it clears canary instead
	// of waiting for an explicit Promote.
	AutoPromote bool
	// VM configures every machine the manager instantiates.
	VM vm.Config
	// Now is the watchdog clock (default time.Now); tests inject a fake.
	Now func() time.Time
	// MaxEvents caps each slot's event ring (default 64).
	MaxEvents int
	// Metrics, when set, receives the manager's telemetry: per-slot
	// serve/mirror/divergence counters, canary cycle histograms, gauges,
	// and per-EventKind counters drained losslessly from the event rings.
	// Nil disables recording. Pair it with VM.Metrics to also capture
	// per-run machine telemetry.
	Metrics *metrics.Registry
	// Journal, when set, makes slot state durable: every stage transition,
	// generation bump, quarantine ledger change, and the serialized bytecode
	// and map contents of the live / last-known-good / baseline deployments
	// are appended as they happen (fsynced on stage transitions), and
	// Manager.Recover replays snapshot+journal on startup. Nil keeps the
	// manager fully in-memory (the previous behavior).
	Journal *journal.Log
	// CompactEvery bounds journal growth: after this many appended records
	// the full state is compacted into the snapshot and the journal is
	// truncated (default 256).
	CompactEvery int
	// JournalDegradeAfter is the count of consecutive journal append/compact
	// failures that detaches the journal — the manager keeps serving fully
	// in-memory ("degraded") and probes for re-attachment with exponential
	// backoff instead of hammering a dead disk on every transition
	// (default 3).
	JournalDegradeAfter int
	// JournalRetryBase is the first re-attachment probe delay; it doubles
	// per failed probe up to JournalRetryMax (defaults 1s / 60s).
	JournalRetryBase time.Duration
	JournalRetryMax  time.Duration
	// ResolveSource, when set, reattaches build Sources to recovered slots
	// from the opaque DeployOptions.SourceDesc journaled with each slot.
	// Without it (or on a resolve error) a recovered slot still serves its
	// journaled program, but the watchdog cannot rebuild it.
	ResolveSource func(desc string) (Source, error)
}

func (c Config) withDefaults() Config {
	if c.ShadowRuns <= 0 {
		c.ShadowRuns = 32
	}
	if c.CanaryRuns <= 0 {
		c.CanaryRuns = 32
	}
	if c.CycleSlack <= 0 {
		c.CycleSlack = 0.10
	}
	if c.MaxRetries <= 0 {
		c.MaxRetries = 3
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 100 * time.Millisecond
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.MaxEvents <= 0 {
		c.MaxEvents = 64
	}
	if c.CompactEvery <= 0 {
		c.CompactEvery = 256
	}
	if c.JournalDegradeAfter <= 0 {
		c.JournalDegradeAfter = 3
	}
	if c.JournalRetryBase <= 0 {
		c.JournalRetryBase = time.Second
	}
	if c.JournalRetryMax <= 0 {
		c.JournalRetryMax = time.Minute
	}
	return c
}

// DeployOptions tune one slot's deployment policy.
type DeployOptions struct {
	// CanaryFraction in [0, 1] routes a deterministic hash-based share of
	// live packets to a canary-stage candidate: both programs still run and
	// divergence still demotes the candidate, but for the routed share the
	// canary's verdict is the one answered. 0 (the default) keeps canary
	// mirror-only.
	CanaryFraction float64
	// SourceDesc is an opaque descriptor of the slot's Source, journaled
	// with the slot so Config.ResolveSource can reattach it after Recover.
	SourceDesc string
}

// Source produces a deployable build. The watchdog re-invokes it on every
// quarantine retry, so a Source must be safe to call repeatedly.
type Source func() (*core.Result, error)

// ModuleSource adapts an IR module to a Source via core.BuildForDeploy.
func ModuleSource(mod *ir.Module, fnName string, opts core.Options) Source {
	return func() (*core.Result, error) {
		return core.BuildForDeploy(mod, fnName, opts)
	}
}

// deployment is one build loaded into a machine. The machine accumulates
// warm state (maps, caches) across runs, so a promoted candidate has already
// soaked on mirrored traffic.
type deployment struct {
	prog    *ebpf.Program
	machine *vm.Machine
	gen     int
	stage   Stage
	cleared bool
	// Clean mirrored runs in the current stage, plus the cycle sums backing
	// the canary regression gate.
	runs       int
	incCycles  uint64
	candCycles uint64
}

// quarantineState is the watchdog's per-slot backoff ledger.
type quarantineState struct {
	attempts  int
	notBefore time.Time
	dead      bool
	reason    string
}

// slot is one named program slot.
type slot struct {
	name    string
	source  Source
	opts    DeployOptions
	nextGen int

	live     *deployment // serving; nil until the first deploy
	lastGood *deployment // previous incumbent, for rollback
	baseline *deployment // clang-only fallback from the last good build
	cand     *deployment // staged/shadow/canary candidate

	quarantine *quarantineState

	served       uint64
	mirrored     uint64
	canaryRouted uint64
	events       []Event
	seq          int

	// mctx / mpkt are the slot's scratch buffers for mirrored packets and
	// fallback replay: one allocation amortized over the slot's lifetime
	// instead of two fresh copies per served packet. bctx / bpkt are their
	// batch-serving counterparts: pristine per-packet copies taken before a
	// ServeBatch run so a mid-batch incumbent fault can replay the batch
	// tail against the fallback.
	mctx, mpkt []byte
	bctx, bpkt [][]byte

	// met holds the slot's registry handles (nil when metrics are off);
	// metricsSeq is the drain watermark — the highest event Seq already
	// counted into the registry.
	met        *slotMetrics
	metricsSeq int
}

// Manager owns a set of named program slots. All methods are safe for
// concurrent use; the hot-swap in Promote is a single pointer update under
// the manager lock, so there is no serving gap.
type Manager struct {
	mu    sync.Mutex
	cfg   Config
	slots map[string]*slot
	order []string

	// jmet holds the persistence telemetry handles (nil when metrics or the
	// journal are off).
	jmet *journalMetrics

	// Journal degradation ledger (see degrade.go): when consecutive
	// append/compact failures cross JournalDegradeAfter the journal is
	// detached and probed for re-attachment with exponential backoff.
	jDegraded   bool
	jFails      int
	jBackoff    time.Duration
	jNextRetry  time.Time
	jReattaches int
	// lastJStats is the journal.Stats watermark behind CollectMetrics' delta
	// publication of fsync/rotation/soft-error counters.
	lastJStats journal.Stats
}

// NewManager returns a Manager with cfg's zero fields defaulted.
func NewManager(cfg Config) *Manager {
	m := &Manager{cfg: cfg.withDefaults(), slots: map[string]*slot{}}
	if m.cfg.Metrics != nil && m.cfg.Journal != nil {
		m.jmet = newJournalMetrics(m.cfg.Metrics)
	}
	return m
}

// Deploy builds src into a fresh candidate for the named slot (creating the
// slot if needed). The first deployment of a slot goes live immediately —
// there is no incumbent to mirror against; every later one is staged and
// must earn promotion through shadow and canary. Build-contained pass
// failures are surfaced as EventBuildFault events; an outright build failure
// quarantines the slot for a watchdog retry.
func (m *Manager) Deploy(name string, src Source) error {
	return m.DeployWith(name, src, DeployOptions{})
}

// DeployWith is Deploy with per-slot policy options.
func (m *Manager) DeployWith(name string, src Source, opts DeployOptions) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.slotLocked(name)
	s.source = src
	s.opts = opts
	s.quarantine = nil
	s.cand = nil
	err := m.buildCandidateLocked(s)
	// A failed build still mutated the ledger (generation bump, quarantine);
	// journal either way, fsynced — deploys are stage transitions.
	m.journalSlotLocked(s, true)
	return err
}

// slotLocked returns (creating if needed) the named slot.
func (m *Manager) slotLocked(name string) *slot {
	s := m.slots[name]
	if s == nil {
		s = &slot{name: name}
		if m.cfg.Metrics != nil {
			s.met = newSlotMetrics(m.cfg.Metrics, name)
		}
		m.slots[name] = s
		m.order = append(m.order, name)
	}
	return s
}

// buildCandidateLocked runs the slot's source and stages the result.
func (m *Manager) buildCandidateLocked(s *slot) error {
	res, err := s.source()
	if err != nil {
		m.quarantineLocked(s, StageStaged, "", fmt.Sprintf("build failed: %v", err))
		return fmt.Errorf("lifecycle: slot %s: build: %w", s.name, err)
	}
	for _, pf := range res.PassFailures {
		m.eventLocked(s, Event{Kind: EventBuildFault, Stage: StageStaged,
			Generation: s.nextGen + 1, Detail: pf.String()})
	}
	if len(res.Culprits) > 0 {
		m.eventLocked(s, Event{Kind: EventBuildFault, Stage: StageStaged,
			Generation: s.nextGen + 1,
			Detail:     fmt.Sprintf("verifier culprits %v (%s fallback)", res.Culprits, res.FellBack)})
	}

	s.nextGen++
	d, err := m.newDeployment(res.Prog, s.nextGen)
	if err != nil {
		m.quarantineLocked(s, StageStaged, "", fmt.Sprintf("load failed: %v", err))
		return fmt.Errorf("lifecycle: slot %s: load: %w", s.name, err)
	}
	if res.Baseline != nil {
		// The clang baseline is the slot's fallback of last resort; keep the
		// one from the most recent successful build.
		if bl, err := m.newDeployment(res.Baseline, 0); err == nil {
			s.baseline = bl
		}
	}

	if s.live == nil {
		s.live = d
		d.stage = StageLive
		m.eventLocked(s, Event{Kind: EventPromoted, Stage: StageLive, Generation: d.gen,
			Detail: "initial deployment, no incumbent to shadow"})
		return nil
	}
	d.stage = StageStaged
	s.cand = d
	m.eventLocked(s, Event{Kind: EventDeployed, Stage: StageStaged, Generation: d.gen,
		Detail: fmt.Sprintf("NI %d vs live NI %d", d.prog.NI(), s.live.prog.NI())})
	return nil
}

func (m *Manager) newDeployment(prog *ebpf.Program, gen int) (*deployment, error) {
	mach, err := vm.New(prog, m.cfg.VM)
	if err != nil {
		return nil, err
	}
	return &deployment{prog: prog, machine: mach, gen: gen}, nil
}

// Serve runs one unit of traffic through the slot's live program and — when
// a candidate is in shadow or canary — mirrors a pristine copy of the input
// through the candidate, replaying the incumbent's helper-nondeterminism
// stream so divergence is attributable to the code. The incumbent's verdict
// is always the one returned; an incumbent fault degrades the slot to the
// last-known-good program or the baseline and answers from there.
func (m *Manager) Serve(name string, ctx, pkt []byte) (int64, vm.Stats, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, err := m.serveSlotLocked(name)
	if err != nil {
		return 0, vm.Stats{}, err
	}
	// Journal any transition this packet triggers (stage advance,
	// quarantine, divergence rejection, degradation) — transitions are rare,
	// so the steady-state serve path never touches the journal.
	seqBefore := s.seq
	defer func() {
		if s.seq != seqBefore {
			m.journalSlotLocked(s, true)
		}
	}()
	return m.servePacketLocked(s, ctx, pkt)
}

// serveSlotLocked resolves the slot for a serve call and runs the
// per-call prologue shared by Serve and ServeBatch: quarantine retry and
// the nothing-deployed check.
func (m *Manager) serveSlotLocked(name string) (*slot, error) {
	s := m.slots[name]
	if s == nil {
		return nil, fmt.Errorf("lifecycle: unknown slot %q", name)
	}
	m.retryLocked(s)
	if s.live == nil {
		return nil, fmt.Errorf("lifecycle: slot %q has nothing deployed", name)
	}
	return s, nil
}

// servePacketLocked is the per-packet serve core: one incumbent run plus
// mirroring, gating and degradation. Serve calls it once; ServeBatch calls
// it for every packet whenever batch semantics need the sequential path.
func (m *Manager) servePacketLocked(s *slot, ctx, pkt []byte) (int64, vm.Stats, error) {
	if s.cand != nil && s.cand.stage == StageStaged {
		s.cand.stage = StageShadow
		m.eventLocked(s, Event{Kind: EventStageAdvance, Stage: StageShadow,
			Generation: s.cand.gen, Detail: "staged → shadow"})
	}
	mirroring := s.cand != nil &&
		(s.cand.stage == StageShadow || s.cand.stage == StageCanary)

	// Programs rewrite ctx/pkt in place, so the mirror (and a fallback
	// replay after an incumbent fault) needs pristine copies taken before
	// the incumbent runs. The slot's scratch buffers are reused across
	// packets: zero copies allocated on the steady-state serve path.
	var mctx, mpkt []byte
	if mirroring || s.lastGood != nil || s.baseline != nil {
		s.mctx = append(s.mctx[:0], ctx...)
		s.mpkt = append(s.mpkt[:0], pkt...)
		mctx, mpkt = s.mctx, s.mpkt
	}
	var rng, ktime uint64
	if mirroring {
		rng, ktime = s.live.machine.HelperState()
	}

	rv, st, err := s.live.machine.Run(ctx, pkt)
	if err != nil || m.overBudget(st) {
		return m.degradeLocked(s, mctx, mpkt, err, st)
	}
	s.served++
	s.met.servedInc()

	if mirroring {
		cand := s.cand
		// Deterministic hash-based canary routing: decided before the runs
		// from the pristine input bytes, so the same packet always routes
		// the same way regardless of timing.
		routed := cand.stage == StageCanary && s.opts.CanaryFraction > 0 &&
			routeHash(mctx, mpkt) < s.opts.CanaryFraction
		cand.machine.SetHelperState(rng, ktime)
		crv, cst, cerr := cand.machine.Run(mctx, mpkt)
		s.mirrored++
		s.met.mirroredInc()
		if cand.stage == StageCanary {
			s.met.observeCanaryCycles(cst.Cycles)
		}
		switch {
		case cerr != nil:
			kind, detail := classifyFault(cerr, cst)
			m.quarantineLocked(s, cand.stage, kind, detail)
		case m.overBudget(cst):
			m.quarantineLocked(s, cand.stage, FaultBudget,
				fmt.Sprintf("budget blown: %d insns / %d cycles", cst.Instructions, cst.Cycles))
		case crv != rv:
			s.met.divergenceInc()
			m.rejectLocked(s, fmt.Sprintf("return divergence: incumbent %d, candidate %d", rv, crv))
		default:
			cand.runs++
			cand.incCycles += st.Cycles
			cand.candCycles += cst.Cycles
			m.advanceLocked(s)
			if routed {
				// The canary cleared every gate for this packet; its verdict
				// is the one answered. The incumbent's view of the traffic
				// (maps, helper stream) is unchanged — it already ran.
				s.canaryRouted++
				s.met.canaryRoutedInc()
				return crv, cst, nil
			}
		}
	}
	return rv, st, nil
}

// ServeBatch serves a batch of traffic through the slot under one lock
// acquisition and — in the steady state, with no candidate being mirrored —
// a single RunBatch call on the live machine, which is where the batch
// engine's throughput win comes from. Results land in out, one slot per
// packet; the returned count is the number of packets whose Errs slot is
// non-nil after degradation handling (matching vm.RunBatch's convention).
//
// Semantics match len(ctxs) sequential Serve calls: a mid-batch incumbent
// fault degrades the slot exactly as Serve would, the faulting packet is
// answered by the fallback when one exists, and the batch tail is replayed
// from pristine input copies against the new live program. When a candidate
// is staged, shadowing or canarying, the batch transparently takes the
// per-packet path so mirroring, gating and canary routing behave
// identically to Serve.
//
// One deliberate seam: the batch runs ahead of fault detection, so when a
// fault does degrade the slot, the packets after it have already run once
// on the now-discarded incumbent. That machine is unreachable after the
// swap — its maps, caches and helper state go with it — but a vm-level
// Metrics sink shared across deployments will have counted the speculative
// runs.
func (m *Manager) ServeBatch(name string, ctxs, pkts [][]byte, out *vm.Batch) (int, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s, err := m.serveSlotLocked(name)
	if err != nil {
		return 0, err
	}
	seqBefore := s.seq
	defer func() {
		if s.seq != seqBefore {
			m.journalSlotLocked(s, true)
		}
	}()

	n := len(ctxs)
	// A candidate in flight means every packet interleaves an incumbent run
	// with a mirrored candidate run and the routing/gating decisions between
	// them: take the sequential path.
	if s.cand != nil {
		out.Reset(n)
		faults := 0
		for i := 0; i < n; i++ {
			out.RV[i], out.Stats[i], out.Errs[i] = m.servePacketLocked(s, ctxs[i], pktAt(pkts, i))
			if out.Errs[i] != nil {
				faults++
			}
		}
		return faults, nil
	}

	// Pristine copies for fallback replay; outer and inner buffers are
	// reused across batches, so the steady state allocates nothing.
	hasFB := s.lastGood != nil || s.baseline != nil
	if hasFB {
		s.bctx = copyBatchInto(s.bctx, ctxs, n)
		s.bpkt = copyBatchInto(s.bpkt, pkts, n)
	}

	s.live.machine.RunBatch(ctxs, pkts, out)

	// Find the first packet that would have tripped Serve's watchdog.
	bad := -1
	for i := 0; i < n; i++ {
		if out.Errs[i] != nil || m.overBudget(out.Stats[i]) {
			bad = i
			break
		}
	}
	if bad < 0 {
		s.served += uint64(n)
		s.met.servedAdd(uint64(n))
		return 0, nil
	}

	// The packets before the fault served normally.
	s.served += uint64(bad)
	s.met.servedAdd(uint64(bad))

	faults := 0
	liveBefore := s.live
	var fctx, fpkt []byte
	if hasFB {
		fctx, fpkt = s.bctx[bad], s.bpkt[bad]
	}
	out.RV[bad], out.Stats[bad], out.Errs[bad] =
		m.degradeLocked(s, fctx, fpkt, out.Errs[bad], out.Stats[bad])
	if out.Errs[bad] != nil {
		faults++
	}

	if s.live != liveBefore {
		// The slot degraded: the batch tail already ran on the discarded
		// incumbent and mutated the caller's buffers. Restore them from the
		// pristine copies and replay each packet against the new live
		// program — a further fault degrades again, exactly as Serve would.
		for i := bad + 1; i < n; i++ {
			copy(ctxs[i], s.bctx[i])
			var pkt []byte
			if i < len(pkts) {
				copy(pkts[i], s.bpkt[i])
				pkt = pkts[i]
			}
			out.RV[i], out.Stats[i], out.Errs[i] = m.servePacketLocked(s, ctxs[i], pkt)
			if out.Errs[i] != nil {
				faults++
			}
		}
		return faults, nil
	}

	// No usable fallback, so the live program is unchanged and the batch
	// results for the tail stand — they are exactly what sequential serves
	// would have produced. Route the remaining bad packets through the same
	// bookkeeping Serve applies (events only; degradeLocked cannot find a
	// fallback it just failed to find, and mutates nothing when it doesn't).
	for i := bad + 1; i < n; i++ {
		if out.Errs[i] != nil || m.overBudget(out.Stats[i]) {
			out.RV[i], out.Stats[i], out.Errs[i] =
				m.degradeLocked(s, nil, nil, out.Errs[i], out.Stats[i])
			if out.Errs[i] != nil {
				faults++
			}
			continue
		}
		s.served++
		s.met.servedInc()
	}
	return faults, nil
}

// pktAt indexes a packet list that may be shorter than the context list
// (tracepoint batches pass nil packets).
func pktAt(pkts [][]byte, i int) []byte {
	if i < len(pkts) {
		return pkts[i]
	}
	return nil
}

// copyBatchInto refreshes dst as pristine copies of the first n entries of
// src (missing entries become empty), reusing outer and inner buffers.
func copyBatchInto(dst, src [][]byte, n int) [][]byte {
	for len(dst) < n {
		dst = append(dst, nil)
	}
	for i := 0; i < n; i++ {
		var b []byte
		if i < len(src) {
			b = src[i]
		}
		dst[i] = append(dst[i][:0], b...)
	}
	return dst
}

// routeHash maps a packet deterministically to [0, 1) via FNV-1a over the
// pristine ctx and pkt bytes. Allocation-free.
func routeHash(ctx, pkt []byte) float64 {
	h := uint64(14695981039346656037)
	for _, b := range ctx {
		h = (h ^ uint64(b)) * 1099511628211
	}
	for _, b := range pkt {
		h = (h ^ uint64(b)) * 1099511628211
	}
	return float64(h>>11) / float64(uint64(1)<<53)
}

// advanceLocked moves a clean candidate through the stage gates.
func (m *Manager) advanceLocked(s *slot) {
	c := s.cand
	switch c.stage {
	case StageShadow:
		if c.runs >= m.cfg.ShadowRuns {
			c.stage = StageCanary
			c.runs, c.incCycles, c.candCycles = 0, 0, 0
			m.eventLocked(s, Event{Kind: EventStageAdvance, Stage: StageCanary,
				Generation: c.gen, Detail: "shadow → canary"})
		}
	case StageCanary:
		if c.runs < m.cfg.CanaryRuns || c.cleared {
			return
		}
		limit := float64(c.incCycles) * (1 + m.cfg.CycleSlack)
		if float64(c.candCycles) > limit {
			m.rejectLocked(s, fmt.Sprintf(
				"cycle regression: candidate %d vs incumbent %d cycles over %d runs (slack %.0f%%)",
				c.candCycles, c.incCycles, c.runs, m.cfg.CycleSlack*100))
			return
		}
		c.cleared = true
		m.eventLocked(s, Event{Kind: EventStageAdvance, Stage: StageCanary,
			Generation: c.gen,
			Detail: fmt.Sprintf("canary cleared (%d vs %d cycles); promotable",
				c.candCycles, c.incCycles)})
		if m.cfg.AutoPromote {
			m.promoteLocked(s, "auto-promote after canary")
		}
	}
}

// Promote atomically hot-swaps the slot's candidate to live. Unless force is
// set the candidate must have cleared canary. The previous incumbent is kept
// as last-known-good for Rollback.
func (m *Manager) Promote(name string, force bool) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.slots[name]
	if s == nil {
		return fmt.Errorf("lifecycle: unknown slot %q", name)
	}
	if s.cand == nil {
		return fmt.Errorf("lifecycle: slot %q has no candidate to promote", name)
	}
	if !s.cand.cleared && !force {
		return fmt.Errorf("lifecycle: slot %q candidate gen %d has not cleared canary (stage %s, %d clean runs)",
			name, s.cand.gen, s.cand.stage, s.cand.runs)
	}
	why := "promoted after canary"
	if !s.cand.cleared {
		why = "forced promotion"
	}
	m.promoteLocked(s, why)
	m.journalSlotLocked(s, true)
	return nil
}

// promoteLocked hot-swaps the candidate to live. Before the cutover the
// incumbent's map state is transferred into the candidate's machine
// (matched by name and spec), so the promoted program continues from the
// incumbent's counters instead of zeroed maps. The swap itself remains a
// single pointer update — there is no serving gap.
func (m *Manager) promoteLocked(s *slot, why string) {
	if n, err := s.cand.machine.TransferMapsFrom(s.live.machine); err != nil {
		why += fmt.Sprintf(" (map transfer failed after %d maps: %v)", n, err)
	} else if n > 0 {
		why += fmt.Sprintf(" (%d maps transferred)", n)
	}
	s.lastGood = s.live
	s.live = s.cand
	s.live.stage = StageLive
	s.cand = nil
	s.quarantine = nil
	m.eventLocked(s, Event{Kind: EventPromoted, Stage: StageLive,
		Generation: s.live.gen, Detail: why})
}

// Rollback restores the previous live program and discards any in-flight
// candidate.
func (m *Manager) Rollback(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.slots[name]
	if s == nil {
		return fmt.Errorf("lifecycle: unknown slot %q", name)
	}
	if s.lastGood == nil {
		return fmt.Errorf("lifecycle: slot %q has no previous program to roll back to", name)
	}
	from := s.live.gen
	detail := fmt.Sprintf("gen %d → gen %d", from, s.lastGood.gen)
	// Carry the outgoing incumbent's map state back: an explicit rollback is
	// a healthy-program decision (unlike degradation after a fault), so its
	// counters are trustworthy and fresher than last-known-good's.
	if n, err := s.lastGood.machine.TransferMapsFrom(s.live.machine); err != nil {
		detail += fmt.Sprintf(" (map transfer failed: %v)", err)
	} else if n > 0 {
		detail += fmt.Sprintf(" (%d maps transferred)", n)
	}
	s.live = s.lastGood
	s.live.stage = StageLive
	s.lastGood = nil
	s.cand = nil
	s.quarantine = nil
	m.eventLocked(s, Event{Kind: EventRolledBack, Stage: StageLive, Generation: s.live.gen,
		Detail: detail})
	m.journalSlotLocked(s, true)
	return nil
}

// Abort discards the slot's in-flight candidate without touching the
// incumbent — the operator-initiated twin of rejectLocked, used by the fleet
// controller when another node's divergence gate halts a rollout and every
// not-yet-promoted candidate must be withdrawn. Aborting also clears a
// quarantine episode: the watchdog has nothing left to rebuild.
func (m *Manager) Abort(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.slots[name]
	if s == nil {
		return fmt.Errorf("lifecycle: unknown slot %q", name)
	}
	if s.cand == nil && s.quarantine == nil {
		return fmt.Errorf("lifecycle: slot %q has no candidate to abort", name)
	}
	var detail string
	if s.cand != nil {
		detail = fmt.Sprintf("candidate gen %d withdrawn at stage %s", s.cand.gen, s.cand.stage)
		m.eventLocked(s, Event{Kind: EventAborted, Stage: s.cand.stage,
			Generation: s.cand.gen, Detail: detail})
	} else {
		detail = fmt.Sprintf("quarantine cleared: %s", s.quarantine.reason)
		m.eventLocked(s, Event{Kind: EventAborted, Stage: StageQuarantined, Detail: detail})
	}
	s.cand = nil
	s.quarantine = nil
	m.journalSlotLocked(s, true)
	return nil
}

// Remove drains a slot entirely: the live deployment, any candidate, the
// event ring, and the journal's memory of it (via a tombstone record, so the
// removal survives a crash). It exists for the fleet's `drain` RPC — when
// placement moves a slot off a worker the stale copy must stop existing, or a
// rejoin would resurrect it and serve old code. Removing an unknown slot is a
// no-op returning false: drains are retried by reconciliation and must be
// idempotent.
func (m *Manager) Remove(name string) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.slots[name] == nil {
		return false
	}
	delete(m.slots, name)
	for i, n := range m.order {
		if n == name {
			m.order = append(m.order[:i], m.order[i+1:]...)
			break
		}
	}
	m.journalRemoveLocked(name)
	return true
}

// rejectLocked discards the candidate for a deterministic failure
// (divergence or cycle regression): rebuilding the same module would produce
// the same program, so the watchdog does not retry.
func (m *Manager) rejectLocked(s *slot, detail string) {
	m.eventLocked(s, Event{Kind: EventRejected, Stage: s.cand.stage,
		Generation: s.cand.gen, Detail: detail})
	s.cand = nil
}

// Tick gives quarantined slots a chance to retry without waiting for
// traffic, and drives the degraded journal's re-attachment probes.
func (m *Manager) Tick() {
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, name := range m.order {
		s := m.slots[name]
		seqBefore := s.seq
		m.retryLocked(s)
		if s.seq != seqBefore {
			m.journalSlotLocked(s, true)
		}
	}
	if m.jDegraded {
		m.maybeReattachLocked()
	}
}

// Slots lists the slot names in creation order.
func (m *Manager) Slots() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]string(nil), m.order...)
}

// Status reports a snapshot of every slot in creation order.
func (m *Manager) Status() []SlotStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]SlotStatus, 0, len(m.order))
	for _, name := range m.order {
		out = append(out, m.statusLocked(m.slots[name]))
	}
	return out
}

// StatusOf reports a snapshot of one slot.
func (m *Manager) StatusOf(name string) (SlotStatus, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.slots[name]
	if s == nil {
		return SlotStatus{}, fmt.Errorf("lifecycle: unknown slot %q", name)
	}
	return m.statusLocked(s), nil
}

func (m *Manager) statusLocked(s *slot) SlotStatus {
	st := SlotStatus{
		Slot:           s.name,
		Stage:          StageLive,
		LiveGeneration: 0,
		LiveNI:         -1,
		Served:         s.served,
		Mirrored:       s.mirrored,
		CanaryRouted:   s.canaryRouted,
		EventSeq:       s.seq,
		Events:         append([]Event(nil), s.events...),
	}
	if s.live != nil {
		st.LiveGeneration = s.live.gen
		st.LiveNI = s.live.prog.NI()
	}
	if s.cand != nil {
		st.Stage = s.cand.stage
		st.CandidateGeneration = s.cand.gen
		st.CandidateStage = s.cand.stage
		st.CandidateRuns = s.cand.runs
		st.Cleared = s.cand.cleared
	} else if s.quarantine != nil {
		st.Stage = StageQuarantined
	}
	if q := s.quarantine; q != nil {
		st.Retries = q.attempts
		st.Dead = q.dead
	}
	return st
}

// MapDump is one map's backing bytes, copied out of a live machine.
type MapDump struct {
	Name string
	Data []byte
}

// LiveMaps returns a copy of every map in the slot's live machine, in map
// declaration order — the observability hook behind merlind's `maps`
// command, and the easiest way to check that counters survived a promotion
// or a restart.
func (m *Manager) LiveMaps(name string) ([]MapDump, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.slots[name]
	if s == nil {
		return nil, fmt.Errorf("lifecycle: unknown slot %q", name)
	}
	if s.live == nil {
		return nil, fmt.Errorf("lifecycle: slot %q has nothing deployed", name)
	}
	mach := s.live.machine
	out := make([]MapDump, 0, mach.NumMaps())
	for i := 0; i < mach.NumMaps(); i++ {
		mp := mach.Map(i)
		out = append(out, MapDump{
			Name: mp.Spec().Name,
			Data: append([]byte(nil), mp.Backing()...),
		})
	}
	return out, nil
}

// Events returns a copy of the slot's event ring (oldest first).
func (m *Manager) Events(name string) []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := m.slots[name]
	if s == nil {
		return nil
	}
	return append([]Event(nil), s.events...)
}

func (m *Manager) eventLocked(s *slot, ev Event) {
	s.seq++
	ev.Seq = s.seq
	ev.Slot = s.name
	s.events = append(s.events, ev)
	if n := len(s.events); n > m.cfg.MaxEvents {
		// Drain the events about to fall off the ring into the metrics
		// registry first: the bounded ring may evict faster than anything
		// scrapes, and the registry must never lose an event. The watermark
		// keeps a later CollectMetrics from counting them again.
		m.drainEventsLocked(s, s.events[:n-m.cfg.MaxEvents])
		s.events = append(s.events[:0:0], s.events[n-m.cfg.MaxEvents:]...)
	}
}
