package lifecycle

import (
	"testing"
)

// TestRemoveTombstoneSurvivesCrash: removing a slot journals a tombstone, so
// a controller-ordered drain (placement moved the slot elsewhere) stays
// drained across a worker crash — recovery must not resurrect the slot from
// its earlier deploy records.
func TestRemoveTombstoneSurvivesCrash(t *testing.T) {
	dir := t.TempDir()
	jl := openJournal(t, dir)
	m := NewManager(Config{ShadowRuns: 2, CanaryRuns: 2, Journal: jl})
	opts := DeployOptions{SourceDesc: "count"}
	for _, slot := range []string{"keep", "drained"} {
		if err := m.DeployWith(slot, progSource(countProg("v1"), nil), opts); err != nil {
			t.Fatal(err)
		}
		serveClean(t, m, slot, 2)
	}
	if !m.Remove("drained") {
		t.Fatal("Remove(drained) = false, want true")
	}
	if m.Remove("drained") {
		t.Fatal("second Remove(drained) = true, want false (already gone)")
	}
	if err := jl.Close(); err != nil { // crash: no Flush, tail records only
		t.Fatal(err)
	}

	jl2 := openJournal(t, dir)
	defer jl2.Close()
	m2 := NewManager(Config{ShadowRuns: 2, CanaryRuns: 2, Journal: jl2,
		ResolveSource: resolveCount})
	rs, err := m2.Recover()
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if rs.Slots != 1 {
		t.Fatalf("recover stats %s: want exactly 1 slot (tombstone honored)", rs)
	}
	if _, err := m2.StatusOf("drained"); err == nil {
		t.Fatal("removed slot resurrected by recovery")
	}
	if st, err := m2.StatusOf("keep"); err != nil || st.Stage != StageLive {
		t.Fatalf("surviving slot: status %v err %v, want live", st, err)
	}

	// The tombstone also survives compaction: snapshot, reopen, recover.
	if err := m2.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := jl2.Close(); err != nil {
		t.Fatal(err)
	}
	jl3 := openJournal(t, dir)
	defer jl3.Close()
	m3 := NewManager(Config{ShadowRuns: 2, CanaryRuns: 2, Journal: jl3,
		ResolveSource: resolveCount})
	if _, err := m3.Recover(); err != nil {
		t.Fatal(err)
	}
	if _, err := m3.StatusOf("drained"); err == nil {
		t.Fatal("removed slot resurrected after compaction")
	}
}
