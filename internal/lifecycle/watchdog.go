package lifecycle

import (
	"fmt"

	"merlin/internal/vm"
)

// The watchdog half of the manager: per-run budget enforcement, quarantine
// with exponential-backoff rebuilds, and incumbent degradation. Everything
// here runs under the manager lock.

// overBudget reports whether a single run blew the configured caps.
func (m *Manager) overBudget(st vm.Stats) bool {
	return (m.cfg.InsnBudget > 0 && st.Instructions > m.cfg.InsnBudget) ||
		(m.cfg.CycleBudget > 0 && st.Cycles > m.cfg.CycleBudget)
}

// classifyFault maps a run error to the watchdog's fault taxonomy.
func classifyFault(err error, st vm.Stats) (vm.FaultKind, string) {
	if err == nil {
		return FaultBudget, fmt.Sprintf("budget blown: %d insns / %d cycles", st.Instructions, st.Cycles)
	}
	if re, ok := vm.AsRuntimeError(err); ok {
		return re.Kind, re.Error()
	}
	return vm.FaultKind("error"), err.Error()
}

// quarantineLocked tears the candidate down and schedules a rebuild after an
// exponential backoff, or gives up once MaxRetries rebuilds have been
// consumed. The incumbent is untouched and keeps serving.
func (m *Manager) quarantineLocked(s *slot, at Stage, kind vm.FaultKind, detail string) {
	gen := s.nextGen
	if s.cand != nil {
		gen = s.cand.gen
	}
	s.cand = nil
	if s.quarantine == nil {
		s.quarantine = &quarantineState{}
	}
	q := s.quarantine
	q.reason = detail
	m.eventLocked(s, Event{Kind: EventQuarantined, Stage: at, Generation: gen,
		Fault: kind, Detail: detail})
	if q.attempts >= m.cfg.MaxRetries {
		q.dead = true
		liveGen := 0
		if s.live != nil {
			liveGen = s.live.gen
		}
		m.eventLocked(s, Event{Kind: EventGaveUp, Stage: StageQuarantined, Generation: gen,
			Detail: fmt.Sprintf("%d rebuild attempts exhausted; serving gen %d indefinitely",
				q.attempts, liveGen)})
		return
	}
	backoff := m.cfg.BackoffBase << q.attempts
	q.notBefore = m.cfg.Now().Add(backoff)
}

// retryLocked rebuilds a quarantined slot once its backoff has expired. The
// quarantine ledger survives a successful rebuild — if the fresh candidate
// faults again the backoff keeps growing — and is only cleared by a
// promotion, rollback or a new Deploy.
func (m *Manager) retryLocked(s *slot) {
	q := s.quarantine
	if q == nil || q.dead || s.source == nil || s.cand != nil {
		return
	}
	if m.cfg.Now().Before(q.notBefore) {
		return
	}
	q.attempts++
	m.eventLocked(s, Event{Kind: EventRetry, Stage: StageQuarantined,
		Detail: fmt.Sprintf("rebuild attempt %d/%d after %q", q.attempts, m.cfg.MaxRetries, q.reason)})
	// A failed rebuild re-quarantines inside buildCandidateLocked; the error
	// itself has nowhere to go mid-Serve and is already recorded as events.
	_ = m.buildCandidateLocked(s)
}

// degradeLocked handles an incumbent fault: swap in the last-known-good
// program (or the clang baseline) and answer the request from it, replaying
// the pristine input copies. This is the graceful-degradation floor — the
// slot keeps serving even when the live program is broken.
func (m *Manager) degradeLocked(s *slot, ctx, pkt []byte, err error, st vm.Stats) (int64, vm.Stats, error) {
	kind, detail := classifyFault(err, st)
	faulted := s.live
	var fb *deployment
	var fbName string
	switch {
	case s.lastGood != nil && s.lastGood != faulted:
		fb, fbName = s.lastGood, "last-known-good"
		s.lastGood = nil
	case s.baseline != nil && s.baseline != faulted:
		fb, fbName = s.baseline, "baseline"
	}
	if fb == nil {
		m.eventLocked(s, Event{Kind: EventDegraded, Stage: StageLive, Generation: faulted.gen,
			Fault: kind, Detail: detail + " (no fallback available)"})
		if err == nil {
			err = fmt.Errorf("lifecycle: slot %q: %s", s.name, detail)
		}
		return 0, st, err
	}
	s.live = fb
	fb.stage = StageLive
	m.eventLocked(s, Event{Kind: EventDegraded, Stage: StageLive, Generation: faulted.gen,
		Fault: kind,
		Detail: fmt.Sprintf("incumbent gen %d faulted (%s); degraded to %s gen %d",
			faulted.gen, detail, fbName, fb.gen)})
	rv, fst, ferr := fb.machine.Run(ctx, pkt)
	if ferr != nil {
		return 0, fst, fmt.Errorf("lifecycle: slot %q: fallback also faulted: %w", s.name, ferr)
	}
	s.served++
	s.met.servedInc()
	s.met.degradedInc()
	return rv, fst, nil
}
