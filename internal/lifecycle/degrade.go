package lifecycle

import (
	"encoding/json"
	"fmt"
	"time"

	"merlin/internal/journal"
)

// The journal-degradation half of the manager: persistence is an amenity,
// serving is the job. A single failed append is counted and tolerated (the
// next transition re-journals the slot's complete state anyway — records are
// idempotent upserts). Consecutive failures crossing
// Config.JournalDegradeAfter mean the storage is actually gone — disk full,
// device error, volume unmounted — so the manager detaches the journal and
// runs fully in-memory, exactly as if Config.Journal were nil, without a
// single serve being refused. While degraded it probes for re-attachment
// with exponential backoff (the probe is a forced-fsync "reattach" marker
// record); when the disk comes back it re-journals every slot's current
// state on top of the marker, so the on-disk ledger is whole again minus
// only the history from the outage window.
//
// merlind has one more degradation site this file covers: journal.Open
// itself failing at startup (state dir unwritable). The daemon then has no
// *journal.Log at all — it calls MarkJournalUnavailable to surface the
// degraded health state and metrics, retries Open on its own backoff, and
// hands the eventual handle to AttachJournal.

// recoveryMarkerKind is the journal record kind appended when a degraded
// journal is re-attached. Recover counts it as replayed, not corrupt.
const recoveryMarkerKind = "reattach"

// JournalHealth is the point-in-time durability health state, surfaced by
// merlind's status output next to the per-slot SlotStatus lines.
type JournalHealth struct {
	// Configured reports whether this manager was ever given a journal (or
	// told one was supposed to exist via MarkJournalUnavailable).
	Configured bool
	// Degraded means slot state is currently NOT being persisted: the
	// journal is detached after persistent storage failures and serving
	// continues in-memory.
	Degraded bool
	// ConsecutiveFailures counts the append/compact failures in the current
	// run of bad luck (reset by any success).
	ConsecutiveFailures int
	// Reattaches counts successful re-attachments over the manager's life.
	Reattaches int
	// RetryIn is how long until the next re-attachment probe (0 when healthy
	// or when a probe is already due).
	RetryIn time.Duration
}

func (h JournalHealth) String() string {
	if !h.Configured {
		return "journal=off"
	}
	if !h.Degraded {
		return fmt.Sprintf("journal=ok reattaches=%d", h.Reattaches)
	}
	return fmt.Sprintf("journal=degraded failures=%d retry_in=%s reattaches=%d",
		h.ConsecutiveFailures, h.RetryIn.Round(time.Millisecond), h.Reattaches)
}

// JournalHealth reports the manager's durability health.
func (m *Manager) JournalHealth() JournalHealth {
	m.mu.Lock()
	defer m.mu.Unlock()
	h := JournalHealth{
		Configured:          m.cfg.Journal != nil || m.jDegraded,
		Degraded:            m.jDegraded,
		ConsecutiveFailures: m.jFails,
		Reattaches:          m.jReattaches,
	}
	if m.jDegraded {
		if left := m.jNextRetry.Sub(m.cfg.Now()); left > 0 {
			h.RetryIn = left
		}
	}
	return h
}

// journalFailLocked records one append/compact failure and degrades once the
// consecutive count crosses the threshold. s is the slot whose transition
// triggered the write (nil for Flush/Compact paths).
func (m *Manager) journalFailLocked(s *slot, op string, err error) {
	m.jmet.appendErrInc()
	m.jFails++
	if m.jDegraded || m.jFails < m.cfg.JournalDegradeAfter {
		return
	}
	m.jDegraded = true
	m.jBackoff = m.cfg.JournalRetryBase
	m.jNextRetry = m.cfg.Now().Add(m.jBackoff)
	m.jmet.degradedSet(true)
	m.jmet.degradationInc()
	if s != nil {
		m.eventLocked(s, Event{Kind: EventJournalDegraded, Stage: StageLive,
			Detail: fmt.Sprintf("journal detached after %d consecutive %s failures (last: %v); serving in-memory, retrying in %s",
				m.jFails, op, err, m.jBackoff)})
	}
}

// journalOKLocked resets the consecutive-failure run after any success.
func (m *Manager) journalOKLocked() { m.jFails = 0 }

// maybeReattachLocked runs one re-attachment probe if the backoff has
// expired: a forced-fsync recovery marker append. Success re-journals every
// slot; failure doubles the backoff. Returns true when the journal is
// healthy again.
func (m *Manager) maybeReattachLocked() bool {
	if !m.jDegraded {
		return true
	}
	j := m.cfg.Journal
	if j == nil {
		// Startup-degraded: there is no handle to probe. merlind owns the
		// re-open loop and will call AttachJournal.
		return false
	}
	if m.cfg.Now().Before(m.jNextRetry) {
		return false
	}
	if err := m.appendMarkerLocked(j); err != nil {
		m.jBackoff *= 2
		if m.jBackoff > m.cfg.JournalRetryMax {
			m.jBackoff = m.cfg.JournalRetryMax
		}
		m.jNextRetry = m.cfg.Now().Add(m.jBackoff)
		return false
	}
	m.reattachedLocked()
	return true
}

// appendMarkerLocked journals the recovery marker, fsynced — the probe must
// prove the whole write path (append + fsync), not just a buffered write.
func (m *Manager) appendMarkerLocked(j *journal.Log) error {
	payload, err := json.Marshal(persistedRecord{
		Kind: recoveryMarkerKind,
		At:   m.cfg.Now().UnixNano(),
	})
	if err != nil {
		return err
	}
	return j.Append(payload, true)
}

// reattachedLocked flips the manager back to healthy and re-persists every
// slot's current state so the on-disk ledger catches up with the outage.
func (m *Manager) reattachedLocked() {
	m.jDegraded = false
	m.jFails = 0
	m.jReattaches++
	m.jmet.degradedSet(false)
	m.jmet.reattachInc()
	for _, name := range m.order {
		s := m.slots[name]
		m.eventLocked(s, Event{Kind: EventJournalReattached, Stage: StageLive,
			Detail: fmt.Sprintf("journal re-attached (reattach #%d); state re-persisted", m.jReattaches)})
		m.journalSlotLocked(s, false)
	}
	if j := m.cfg.Journal; j != nil {
		_ = j.Sync()
	}
}

// MarkJournalUnavailable puts a journal-less manager into the degraded
// health state: merlind calls it when journal.Open fails at startup so the
// outage is visible in /metrics and health output while the daemon serves
// in-memory and retries the open.
func (m *Manager) MarkJournalUnavailable(reason string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.jmet == nil && m.cfg.Metrics != nil {
		m.jmet = newJournalMetrics(m.cfg.Metrics)
	}
	if m.jDegraded {
		return
	}
	m.jDegraded = true
	m.jFails = m.cfg.JournalDegradeAfter
	m.jBackoff = m.cfg.JournalRetryBase
	m.jNextRetry = m.cfg.Now().Add(m.jBackoff)
	m.jmet.degradedSet(true)
	m.jmet.degradationInc()
	for _, name := range m.order {
		m.eventLocked(m.slots[name], Event{Kind: EventJournalDegraded, Stage: StageLive,
			Detail: "journal unavailable at startup: " + reason})
	}
}

// AttachJournal hands the manager a (re)opened journal. It journals the
// recovery marker and every slot's current state; on marker failure the
// journal stays attached but degraded, and the manager's own backoff probes
// take over. Also used by merlind's startup-degraded path once its Open
// retry loop succeeds.
func (m *Manager) AttachJournal(j *journal.Log) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.cfg.Journal = j
	m.lastJStats = journal.Stats{}
	if m.jmet == nil && m.cfg.Metrics != nil {
		m.jmet = newJournalMetrics(m.cfg.Metrics)
	}
	if !m.jDegraded {
		return nil
	}
	if err := m.appendMarkerLocked(j); err != nil {
		m.jNextRetry = m.cfg.Now().Add(m.jBackoff)
		return fmt.Errorf("lifecycle: journal attach probe: %w", err)
	}
	m.reattachedLocked()
	return nil
}
