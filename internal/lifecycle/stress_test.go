package lifecycle

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"

	"merlin/internal/metrics"
)

// TestMultiSlotStress drives concurrent traffic through live slots while
// deploy/promote/rollback race on other slots, under the race detector in
// CI. It asserts the three telemetry invariants the metrics subsystem
// promises:
//
//   - no lost events: every event a slot ever emitted is counted in the
//     registry, even though the bounded rings evict under churn;
//   - no cross-slot bleed: each slot's served counter equals exactly the
//     number of Serve calls this test made on that slot;
//   - monotonic counters: a concurrent sampler never observes any counter
//     or histogram count decrease.
func TestMultiSlotStress(t *testing.T) {
	reg := metrics.New()
	m := NewManager(Config{ShadowRuns: 2, CanaryRuns: 2, MaxEvents: 8, Metrics: reg})

	trafficSlots := []string{"t0", "t1", "t2", "t3"}
	churnSlots := []string{"c0", "c1"}
	for _, s := range append(append([]string{}, trafficSlots...), churnSlots...) {
		if err := m.Deploy(s, progSource(goodProg(), nil)); err != nil {
			t.Fatal(err)
		}
	}

	perWorker := 400
	churnCycles := 40
	if testing.Short() {
		perWorker, churnCycles = 60, 8
	}

	servedBySlot := map[string]*atomic.Int64{}
	for _, s := range append(append([]string{}, trafficSlots...), churnSlots...) {
		servedBySlot[s] = &atomic.Int64{}
	}

	var wg sync.WaitGroup
	// Traffic workers: steady load on dedicated live slots.
	for _, slot := range trafficSlots {
		wg.Add(1)
		go func(slot string) {
			defer wg.Done()
			for j := 0; j < perWorker; j++ {
				ctx, pkt := packet(0)
				rv, _, err := m.Serve(slot, ctx, pkt)
				if err != nil {
					t.Errorf("slot %s serve %d: %v", slot, j, err)
					return
				}
				if rv != 2 {
					t.Errorf("slot %s serve %d: verdict %d, want 2", slot, j, rv)
					return
				}
				servedBySlot[slot].Add(1)
			}
		}(slot)
	}
	// Churn workers: deploy/promote/rollback racing against the traffic,
	// with enough interleaved serves to walk candidates through the stages.
	for _, slot := range churnSlots {
		wg.Add(1)
		go func(slot string) {
			defer wg.Done()
			for j := 0; j < churnCycles; j++ {
				if err := m.Deploy(slot, progSource(goodProg(), nil)); err != nil {
					t.Errorf("slot %s deploy %d: %v", slot, j, err)
					return
				}
				for k := 0; k < 6; k++ {
					ctx, pkt := packet(0)
					if _, _, err := m.Serve(slot, ctx, pkt); err != nil {
						t.Errorf("slot %s churn serve: %v", slot, err)
						return
					}
					servedBySlot[slot].Add(1)
				}
				// Promotion may legitimately race a concurrent redeploy;
				// rollback may find nothing to restore. Both are fine — the
				// point is that they contend with traffic.
				_ = m.Promote(slot, true)
				if j%3 == 0 {
					_ = m.Rollback(slot)
				}
			}
		}(slot)
	}

	// Monotonicity sampler: counters and histogram counts must never go
	// backwards while the fleet hammers the registry.
	stop := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		last := map[string]int64{}
		for {
			snap := reg.Snapshot()
			for key, v := range snap {
				if !strings.Contains(key, "_total") && !strings.Contains(key, "_count") {
					continue // gauges may move both ways
				}
				if prev, ok := last[key]; ok && v < prev {
					t.Errorf("counter %s went backwards: %d -> %d", key, prev, v)
				}
				last[key] = v
			}
			select {
			case <-stop:
				return
			default:
			}
		}
	}()

	wg.Wait()
	close(stop)
	<-samplerDone

	m.CollectMetrics()
	snap := reg.Snapshot()
	for slot, want := range servedBySlot {
		key := fmt.Sprintf("merlin_lifecycle_served_total{slot=%q}", slot)
		if got := snap[key]; got != want.Load() {
			t.Errorf("%s = %d, want %d (cross-slot bleed or lost increment)", key, got, want.Load())
		}
		st, err := m.StatusOf(slot)
		if err != nil {
			t.Fatal(err)
		}
		if int64(st.Served) != want.Load() {
			t.Errorf("slot %s manager served=%d, test counted %d", slot, st.Served, want.Load())
		}
		if got := sumEventCounters(snap, slot); got != int64(st.EventSeq) {
			t.Errorf("slot %s: event counters total %d, want %d (lost events; ring holds %d)",
				slot, got, st.EventSeq, len(st.Events))
		}
	}
	// The churn slots must actually have churned through the ring, or the
	// no-lost-events assertion above proved nothing.
	for _, slot := range churnSlots {
		st, _ := m.StatusOf(slot)
		if st.EventSeq <= len(st.Events) {
			t.Errorf("slot %s never evicted events (seq %d, ring %d)", slot, st.EventSeq, len(st.Events))
		}
	}
}
