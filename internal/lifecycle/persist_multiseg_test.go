package lifecycle

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"

	"merlin/internal/journal"
)

// buildMultiSegmentState journals a deploy→promote churn with a small
// segment bound so the ledger spans several segment files (no Compact, which
// would fold them back into one). Returns the segment file names in replay
// order: journal.log first, then numbered segments ascending.
func buildMultiSegmentState(t *testing.T, dir string) []string {
	t.Helper()
	jl, err := journal.OpenWith(dir, journal.Options{SegmentBytes: 1 << 10})
	if err != nil {
		t.Fatal(err)
	}
	m := NewManager(Config{ShadowRuns: 1, CanaryRuns: 1, MaxEvents: 4, Journal: jl})
	if err := m.Deploy("s", progSource(countProg("v1"), nil)); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if err := m.Deploy("s", progSource(countProg(fmt.Sprintf("v%d", i+2)), nil)); err != nil {
			t.Fatal(err)
		}
		serveClean(t, m, "s", 2)
		if err := m.Promote("s", false); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Flush(); err != nil {
		t.Fatal(err)
	}
	if n := len(jl.Segments()); n < 3 {
		t.Fatalf("only %d segments; the scenario must rotate to be meaningful", n)
	}
	jl.Close()
	segs, err := segmentNames(dir)
	if err != nil {
		t.Fatal(err)
	}
	return segs
}

// segmentNames lists the on-disk segment files in replay order.
func segmentNames(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var base bool
	var nums []string
	for _, e := range ents {
		switch {
		case e.Name() == "journal.log":
			base = true
		case strings.HasPrefix(e.Name(), "journal.") && len(e.Name()) == len("journal.000000"):
			nums = append(nums, e.Name())
		}
	}
	sort.Strings(nums)
	var out []string
	if base {
		out = append(out, "journal.log")
	}
	return append(out, nums...), nil
}

// copySegments clones the state dir's journal files (and snapshot, if any)
// into a scratch dir, with segment `name` truncated to cut bytes.
func copySegments(t *testing.T, src, dst string, segs []string, name string, cut int) {
	t.Helper()
	for _, s := range segs {
		raw, err := os.ReadFile(filepath.Join(src, s))
		if err != nil {
			t.Fatal(err)
		}
		if s == name {
			raw = raw[:cut]
		}
		if err := os.WriteFile(filepath.Join(dst, s), raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	if snap, err := os.ReadFile(filepath.Join(src, "snapshot.db")); err == nil {
		if err := os.WriteFile(filepath.Join(dst, "snapshot.db"), snap, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// recoverAndServe opens dir cold, recovers, and serves one packet through
// every surviving slot. Any error or panic fails the test.
func recoverAndServe(t *testing.T, dir, what string) RecoverStats {
	t.Helper()
	jl, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("%s: Open: %v", what, err)
	}
	defer jl.Close()
	m := NewManager(Config{ShadowRuns: 1, CanaryRuns: 1, MaxEvents: 4, Journal: jl})
	rs, err := m.Recover()
	if err != nil {
		t.Fatalf("%s: Recover: %v", what, err)
	}
	for _, name := range m.Slots() {
		ctx, pkt := packet(1)
		if _, _, err := m.Serve(name, ctx, pkt); err != nil {
			t.Fatalf("%s: recovered slot %s cannot serve: %v", what, name, err)
		}
	}
	return rs
}

// TestRecoverMultiSegmentTruncationSweep extends the crash-injection sweep
// across segment boundaries: every segment of a multi-segment ledger is
// truncated at its record boundaries plus sampled mid-record offsets —
// including length 0, i.e. a tear exactly at the rotation point — and every
// layout must recover a serving manager. Records are idempotent full-state
// upserts, so as long as any complete slot record survives in any segment,
// the slot survives (possibly older, never corrupt).
func TestRecoverMultiSegmentTruncationSweep(t *testing.T) {
	dir := t.TempDir()
	segs := buildMultiSegmentState(t, dir)

	for _, name := range segs {
		raw, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		cuts := map[int]bool{0: true, len(raw): true}
		for b := range recordBoundaries(raw) {
			cuts[b] = true
		}
		for _, frac := range []int{3, 5, 7} {
			if c := len(raw) * frac / 8; c < len(raw) {
				cuts[c] = true
			}
		}
		if len(raw) > 0 {
			cuts[len(raw)-1] = true
		}
		for cut := range cuts {
			scratch := t.TempDir()
			copySegments(t, dir, scratch, segs, name, cut)
			what := fmt.Sprintf("%s cut at %d/%d", name, cut, len(raw))
			rs := recoverAndServe(t, scratch, what)
			if rs.Slots != 1 {
				t.Errorf("%s: slot lost (%s); other segments still held its state", what, rs)
			}
		}
	}
}

// TestRecoverMissingMiddleSegment: a whole retired segment vanishing (disk
// repair, fsck quarantine, an over-eager operator) is loud — counted corrupt
// — but replay continues through the surviving segments and the manager
// keeps accepting appends afterwards.
func TestRecoverMissingMiddleSegment(t *testing.T) {
	dir := t.TempDir()
	segs := buildMultiSegmentState(t, dir)
	// Remove a retired middle segment, never the active tail.
	victim := segs[1]
	if err := os.Remove(filepath.Join(dir, victim)); err != nil {
		t.Fatal(err)
	}

	jl, err := journal.Open(dir)
	if err != nil {
		t.Fatalf("Open with missing %s: %v", victim, err)
	}
	defer jl.Close()
	m := NewManager(Config{ShadowRuns: 1, CanaryRuns: 1, MaxEvents: 4, Journal: jl})
	rs, err := m.Recover()
	if err != nil {
		t.Fatalf("Recover with missing %s: %v", victim, err)
	}
	if rs.CorruptRecords == 0 {
		t.Errorf("missing segment %s was silent; want it counted corrupt (%s)", victim, rs)
	}
	if rs.Slots != 1 {
		t.Fatalf("slot lost to a missing middle segment (%s)", rs)
	}
	serveClean(t, m, "s", 1)
	// The ledger still accepts new history after the damage.
	if err := m.Deploy("s", progSource(countProg("post-damage"), nil)); err != nil {
		t.Fatalf("deploy after missing-segment recovery: %v", err)
	}
}

// TestRecoverStaleRotationSegment: a crash between "create next segment" and
// "first append" leaves a stale empty (or torn) segment as the
// highest-numbered file. Startup must adopt it as the active tail — empty is
// clean, a torn partial frame is truncated — and appends must land in it.
func TestRecoverStaleRotationSegment(t *testing.T) {
	for _, tc := range []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"torn-frame", []byte{9, 0, 0, 0, 0xde, 0xad}}, // length prefix, no body
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			segs := buildMultiSegmentState(t, dir)
			last := segs[len(segs)-1]
			var n int
			if _, err := fmt.Sscanf(last, "journal.%06d", &n); err != nil {
				t.Fatalf("active segment %q not numbered; scenario did not rotate", last)
			}
			stale := fmt.Sprintf("journal.%06d", n+1)
			if err := os.WriteFile(filepath.Join(dir, stale), tc.data, 0o644); err != nil {
				t.Fatal(err)
			}

			jl, err := journal.Open(dir)
			if err != nil {
				t.Fatalf("Open with stale %s: %v", stale, err)
			}
			defer jl.Close()
			m := NewManager(Config{ShadowRuns: 1, CanaryRuns: 1, MaxEvents: 4, Journal: jl})
			rs, err := m.Recover()
			if err != nil {
				t.Fatalf("Recover with stale %s: %v", stale, err)
			}
			if rs.Slots != 1 {
				t.Fatalf("slot lost to a stale rotation segment (%s)", rs)
			}
			serveClean(t, m, "s", 1)
			if err := m.Deploy("s", progSource(countProg("after-stale"), nil)); err != nil {
				t.Fatalf("deploy onto stale active segment: %v", err)
			}
			if err := m.Flush(); err != nil {
				t.Fatal(err)
			}
			if fi, err := os.Stat(filepath.Join(dir, stale)); err != nil || fi.Size() == 0 {
				t.Errorf("stale segment %s was not adopted as the active tail (err=%v)", stale, err)
			}
		})
	}
}

// FuzzRecoverMultiSegment is FuzzRecover over a two-segment layout with a
// deliberate numbering gap (journal.log + journal.000002): arbitrary bytes
// in both segments and the snapshot must never panic Open, Recover, or
// serving — at worst the ledger degrades to fresh.
func FuzzRecoverMultiSegment(f *testing.F) {
	seedDir := f.TempDir()
	{
		jl, err := journal.OpenWith(seedDir, journal.Options{SegmentBytes: 512})
		if err != nil {
			f.Fatal(err)
		}
		m := NewManager(Config{ShadowRuns: 1, CanaryRuns: 1, MaxEvents: 4, Journal: jl})
		for i := 0; i < 6; i++ {
			_ = m.Deploy("s", progSource(countProg("seed"), nil))
		}
		_ = m.Flush()
		jl.Close()
	}
	names, err := segmentNames(seedDir)
	if err != nil {
		f.Fatal(err)
	}
	var seeds [][]byte
	for _, name := range names {
		raw, err := os.ReadFile(filepath.Join(seedDir, name))
		if err != nil {
			f.Fatal(err)
		}
		seeds = append(seeds, raw)
	}
	if len(seeds) < 2 {
		f.Fatalf("seed scenario produced %d segments, want >= 2", len(seeds))
	}
	f.Add(seeds[0], seeds[1])
	f.Add(seeds[1], seeds[0][:len(seeds[0])/2])
	f.Add([]byte{}, []byte{})
	f.Add([]byte("not a journal"), []byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})

	f.Fuzz(func(t *testing.T, base, tail []byte) {
		dir := t.TempDir()
		for name, data := range map[string][]byte{
			"journal.log":    base,
			"journal.000002": tail, // gap: no journal.000001
			"snapshot.db":    tail,
		} {
			if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
				t.Fatal(err)
			}
		}
		jl, err := journal.Open(dir)
		if err != nil {
			t.Fatalf("Open must tolerate arbitrary segment bytes: %v", err)
		}
		defer jl.Close()
		m := NewManager(Config{Journal: jl})
		if _, err := m.Recover(); err != nil {
			t.Fatalf("Recover must degrade, not fail: %v", err)
		}
		for _, name := range m.Slots() {
			ctx, pkt := packet(0)
			_, _, _ = m.Serve(name, ctx, pkt) // must not panic
		}
	})
}
