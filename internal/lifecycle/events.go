package lifecycle

import (
	"fmt"

	"merlin/internal/vm"
)

// Stage is a position in the deployment state machine. A candidate moves
// staged → shadow → canary and is then promotable to live; any fault on the
// way parks the slot in quarantined until the watchdog's backoff expires.
type Stage string

const (
	// StageStaged: built and loaded into a machine, not yet receiving
	// mirrored traffic. The first served packet advances it to shadow.
	StageStaged Stage = "staged"
	// StageShadow: running on mirrored traffic next to the incumbent;
	// rejected on any return-value divergence, runtime fault or budget
	// blowout. The incumbent's verdict is always the one served.
	StageShadow Stage = "shadow"
	// StageCanary: still mirrored, with the cycle-cost regression gate armed
	// on top of the shadow checks.
	StageCanary Stage = "canary"
	// StageLive: serving traffic; only one deployment per slot is live.
	StageLive Stage = "live"
	// StageQuarantined: the candidate faulted and was torn down; the
	// watchdog rebuilds it after an exponential backoff, up to MaxRetries.
	StageQuarantined Stage = "quarantined"
)

// FaultBudget is the watchdog's own fault class for deployments that exceed
// the configured per-run instruction or cycle budget without the VM itself
// reporting a fault.
const FaultBudget vm.FaultKind = "budget"

// EventKind classifies a structured per-slot lifecycle event.
type EventKind string

const (
	// EventDeployed: a candidate was built and staged.
	EventDeployed EventKind = "deployed"
	// EventBuildFault: the guarded deployment build contained a pass failure
	// (one event per guard.PassFailure, including verifier bisection).
	EventBuildFault EventKind = "build-fault"
	// EventStageAdvance: the candidate moved to the next stage (or cleared
	// canary and became promotable).
	EventStageAdvance EventKind = "stage-advance"
	// EventPromoted: the candidate was atomically hot-swapped to live.
	EventPromoted EventKind = "promoted"
	// EventRejected: automatic rollback — the candidate was discarded for a
	// return-value divergence or a cycle-cost regression. Deterministic
	// failures are not retried.
	EventRejected EventKind = "rejected"
	// EventQuarantined: the watchdog tore the candidate down for a runtime
	// fault or budget blowout and scheduled a rebuild.
	EventQuarantined EventKind = "quarantined"
	// EventRetry: the backoff expired and a rebuild attempt started.
	EventRetry EventKind = "retry"
	// EventGaveUp: rebuild attempts are exhausted; the slot keeps serving
	// the incumbent indefinitely.
	EventGaveUp EventKind = "gave-up"
	// EventRolledBack: an explicit rollback restored the previous live
	// program.
	EventRolledBack EventKind = "rolled-back"
	// EventAborted: an operator (or the fleet controller halting a rollout)
	// discarded the in-flight candidate without touching the incumbent.
	EventAborted EventKind = "aborted"
	// EventDegraded: the *incumbent* faulted and the slot fell back to the
	// last-known-good program or the clang baseline.
	EventDegraded EventKind = "degraded"
	// EventRecovered: the slot was reconstructed from the journal after a
	// restart (Manager.Recover). Any in-flight candidate from before the
	// crash was rolled back to last-known-good — i.e. dropped, with the
	// journaled incumbent still live.
	EventRecovered EventKind = "recovered"
	// EventJournalDegraded: persistent storage failures detached the journal;
	// the manager keeps serving fully in-memory and retries re-attachment
	// with exponential backoff.
	EventJournalDegraded EventKind = "journal-degraded"
	// EventJournalReattached: a re-attachment probe succeeded; a recovery
	// marker was journaled and every slot's current state re-persisted.
	EventJournalReattached EventKind = "journal-reattached"
)

// Event is the structured record of one lifecycle transition, the runtime
// analog of guard.PassFailure: tests and operators consume these instead of
// grepping logs.
type Event struct {
	// Seq is a per-slot monotonic sequence number.
	Seq int
	// Slot names the program slot.
	Slot string
	// Kind is the transition that fired.
	Kind EventKind
	// Stage is the candidate's stage when the event fired (StageLive for
	// promotions, degradations and incumbent-side events).
	Stage Stage
	// Generation identifies the deployment the event is about.
	Generation int
	// Fault carries the VM fault kind (or FaultBudget) for quarantine and
	// degradation events; empty otherwise.
	Fault vm.FaultKind
	// Detail is a human-readable description.
	Detail string
}

func (e Event) String() string {
	s := fmt.Sprintf("slot %s gen %d [%s] %s", e.Slot, e.Generation, e.Stage, e.Kind)
	if e.Fault != "" {
		s += fmt.Sprintf(" (%s)", e.Fault)
	}
	if e.Detail != "" {
		s += ": " + e.Detail
	}
	return s
}

// SlotStatus is a point-in-time health snapshot of one slot, the Result-like
// status surface merlind prints.
type SlotStatus struct {
	Slot string
	// Stage summarizes the slot: the candidate's stage when one is in
	// flight, quarantined while the watchdog backs off, live otherwise.
	Stage Stage
	// LiveGeneration / LiveNI describe the serving program (0/-1 when
	// nothing is live yet).
	LiveGeneration int
	LiveNI         int
	// Candidate describes the in-flight deployment, if any.
	CandidateGeneration int
	CandidateStage      Stage
	CandidateRuns       int
	// Cleared reports that the candidate passed the canary gate and may be
	// promoted.
	Cleared bool
	// Served / Mirrored count incumbent runs and candidate mirror runs.
	Served   uint64
	Mirrored uint64
	// CanaryRouted counts live packets whose verdict was answered by the
	// canary under DeployOptions.CanaryFraction.
	CanaryRouted uint64
	// Retries is the number of rebuild attempts consumed; Dead means they
	// are exhausted.
	Retries int
	Dead    bool
	// EventSeq is the total number of events the slot has ever emitted (the
	// Seq of the newest event); the bounded ring below may hold fewer.
	EventSeq int
	// Events is a copy of the slot's recent event ring (oldest first).
	Events []Event
}

func (s SlotStatus) String() string {
	out := fmt.Sprintf("slot=%s stage=%s live=gen%d ni=%d served=%d mirrored=%d",
		s.Slot, s.Stage, s.LiveGeneration, s.LiveNI, s.Served, s.Mirrored)
	if s.CandidateGeneration > 0 {
		out += fmt.Sprintf(" candidate=gen%d/%s runs=%d cleared=%v",
			s.CandidateGeneration, s.CandidateStage, s.CandidateRuns, s.Cleared)
	}
	if s.CanaryRouted > 0 {
		out += fmt.Sprintf(" canary_routed=%d", s.CanaryRouted)
	}
	if s.Retries > 0 || s.Dead {
		out += fmt.Sprintf(" retries=%d dead=%v", s.Retries, s.Dead)
	}
	if s.EventSeq > 0 {
		// The event watermark rides on every status (and traffic) reply so a
		// fleet controller can tell "nothing happened since I last looked"
		// without a full status poll.
		out += fmt.Sprintf(" eseq=%d", s.EventSeq)
	}
	return out
}
