// Command merlind is the runtime program-lifecycle daemon: it owns named
// program slots, builds deployments through the guarded Merlin pipeline
// (core.BuildForDeploy), takes every candidate through the
// staged → shadow → canary → live state machine of internal/lifecycle, and
// drives synthetic XDP traffic so hot-swaps can be exercised end to end
// without a kernel. Commands arrive as lines on stdin; every command answers
// with one "ok ..." or "err ..." line, and the process exits non-zero if any
// command failed (CI smoke runs rely on this).
//
// Usage:
//
//	merlind [flags] < script
//
// Commands:
//
//	deploy <slot> <file.mir|corpus:NAME> [func]   build + stage a candidate
//	traffic <slot> <n>                            serve n synthetic packets
//	promote <slot> [force]                        hot-swap candidate to live
//	rollback <slot>                               restore previous live program
//	abort <slot>                                  discard the staged candidate
//	drain <slot>                                  remove the slot entirely
//	                                              (controller-driven rebalance)
//	build <file.mir|corpus:NAME> [func]           run the build service
//	                                              (dedup + artifact cache)
//	cachestats                                    superopt + artifact cache sizes
//	cacheexport [since]                           export superopt verdicts ≥ since
//	cachemerge <b64>                              union a peer's verdicts in
//	status                                        one line per slot
//	events <slot>                                 dump the slot's event ring
//	maps <slot>                                   dump the live program's maps
//	metrics                                       dump the metrics registry
//	                                              (Prometheus text format)
//	tick                                          let quarantined slots retry
//	quit                                          exit
//
// Every layer reports into one metrics registry: the VM (per-run cycles,
// instructions, fault kinds), the build pipeline (per-pass wall time,
// rollbacks, verifier verdicts) and the lifecycle manager (per-slot serve
// and mirror counters, per-EventKind counters drained losslessly from the
// event rings, canary cycle histograms). `metrics` encodes the whole thing.
//
// Flags tune the lifecycle gates: -shadow/-canary (clean mirrored runs per
// stage), -cycle-slack (tolerated canary cycle regression), -insn-budget and
// -cycle-budget (watchdog per-run caps), -retries/-backoff (quarantine
// rebuild policy), -auto-promote, -canary-fraction (hash-routed live share
// answered by the canary), and the usual build knobs (-hook, -mcpu,
// -guard-diff-inputs, -pass-timeout).
//
// With -state-dir the daemon is crash-safe: every mutating command is
// journaled (fsynced on stage transitions), map contents are flushed after
// traffic and on SIGINT/SIGTERM, and on startup the previous state —
// live slots, generations, last-known-good programs, quarantine backoffs,
// map contents — is recovered from the journal and reported as one
// "ok recover ..." line. A corrupt or torn journal degrades to whatever
// prefix was intact (at worst a fresh ledger); it never prevents startup.
// An empty -state-dir (the default) keeps everything in memory. The state
// directory is flock-guarded: a second daemon pointed at the same -state-dir
// fails fast at startup instead of interleaving journal appends.
//
// The journal rotates into bounded segments (-journal-segment-bytes) and its
// durability is tunable with -fsync-policy: sync-every-record (default),
// group-commit (a background committer batches fsyncs every -fsync-interval
// or -fsync-batch records), or async (fsync only on stage transitions and
// compaction). Stage transitions are individually fsynced under every
// policy. If the state dir is unavailable at startup (for any reason other
// than another daemon's lock) or fails persistently at runtime, merlind
// keeps serving from memory in a degraded mode — reported by the
// merlin_journal_degraded gauge and the status command — and re-attaches
// with exponential backoff once storage recovers.
//
// With -listen the daemon also serves GET /metrics over HTTP (Prometheus
// text exposition format, same registry as the `metrics` command) and prints
// "ok listen <addr>" with the resolved address, so scripts can pass :0 and
// scrape the chosen port.
//
// With -superopt every deploy additionally runs the caching peephole
// superoptimizer tier (internal/superopt) after the Merlin passes; the
// guarded pipeline and quarantine machinery protect the incumbent exactly as
// they do for the rule-based optimizers. -superopt-cache persists search
// verdicts across restarts (it must be a different directory from
// -state-dir; each is exclusively locked). Without -superopt-cache the
// daemon still keeps a process-wide in-memory verdict cache, so repeated
// builds share verdicts and the cache can be federated (see below).
//
// The build service (internal/buildsvc) answers the `build` verb: a bounded
// worker pool (-build-workers, -build-queue) deduplicates identical
// submissions by content-addressed key and serves repeat builds from a
// journal-framed artifact cache (-build-cache, persistent and exclusively
// locked like the other state directories; empty keeps artifacts in memory).
// A full queue rejects with a typed error instead of blocking the daemon.
// `cachestats` reports cache sizes; `cacheexport`/`cachemerge` move superopt
// verdict deltas between daemons as base64 blobs — the controller's `fcache`
// verb drives them fleet-wide (pull every worker's delta, merge as a union
// with loud conflict detection, push the merged cache back), so one
// machine's search pays for every machine's build.
//
// The HTTP listener is resilient: if its accept loop dies (fd exhaustion, a
// dying interface) the error is logged and counted (merlin_http_serve_errors
// _total) and the listener re-opens with backoff instead of the goroutine
// silently exiting; `status` reports a "listener addr=... up=..." line.
//
// -src-fault-rate (with -src-fault-seed) interposes the chaos filesystem on
// the deploy source read path, injecting I/O errors at the given rate —
// exercised by CI to prove a failed source read rejects the deploy without
// disturbing the incumbent.
//
// Fleet modes (see internal/fleet and cmd/merlind/fleet.go):
//
//	merlind -controller <addr> [-state-dir DIR] [-listen ADDR]
//	        [-replication R] [-control-token T]
//
// runs the fleet control plane instead of a local lifecycle daemon: workers
// join over TCP, fdeploy drives a fleet-wide rolling deploy through each
// worker's canary gate (halting and rolling back on divergence), ftraffic
// fans packets out over the consistent-hash ring, and with -state-dir the
// controller journals every transition and resumes in-flight rollouts after
// a crash ("ok frecover ..."). Each slot is placed on -replication workers
// (default 2); traffic fails over to surviving replicas and a background
// rebalancer re-replicates lost copies through the canary gate. Controller
// commands: join, workers, fleet, placement, fdeploy, fstep, fwait, ftraffic,
// fevents, fmetrics, leave, tick, quit.
//
//	merlind -join <controller-addr> [-name N] [-control ADDR] [-rejoin-every D]
//	        [-control-token T]
//
// runs a worker: the normal lifecycle daemon plus a control listener serving
// the same command set over TCP, announcing itself to the controller every
// -rejoin-every so restarts and healed partitions re-admit it automatically.
// A worker keeps reading stdin too; with no script, it serves until `quit`
// or a signal.
//
// -control-token arms shared-secret authentication on both sides: every
// control/join RPC must open with "auth <token>" (compared in constant time)
// or it is refused with "err unauthorized" and counted in
// merlin_fleet_auth_failures_total. Stdin is the local operator and is never
// challenged.
package main

import (
	"bufio"
	"encoding/base64"
	"errors"
	"flag"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"merlin/internal/buildsvc"
	"merlin/internal/chaos"
	"merlin/internal/core"
	"merlin/internal/corpus"
	"merlin/internal/ebpf"
	"merlin/internal/guard"
	"merlin/internal/ir"
	"merlin/internal/journal"
	"merlin/internal/lifecycle"
	"merlin/internal/metrics"
	"merlin/internal/superopt"
	"merlin/internal/vm"
)

type daemon struct {
	// mu serializes command dispatch: stdin and every control-listener
	// connection share one daemon, and a command's reply lines must not
	// interleave with another's manager mutations.
	mu         sync.Mutex
	mgr        *lifecycle.Manager
	reg        *metrics.Registry
	fs         chaos.FS        // source/objfile read path, fault-injectable
	jlmu       sync.Mutex      // guards jl: the reattach loop sets it concurrently
	jl         *journal.Log    // nil while the state dir is unavailable
	socache    *superopt.Cache // nil unless -superopt (persistent or in-memory)
	bsvc       *buildsvc.Service
	httpSrv    *metrics.ResilientServer
	buildOpts  core.Options
	deployOpts lifecycle.DeployOptions
	seed       int64
	traffic    int64  // packets generated so far, advances the input stream
	token      string // control-listener shared secret; "" accepts everything
}

// shutdown flushes and closes everything the daemon owns durable state in.
func (d *daemon) shutdown() {
	if d.bsvc != nil {
		d.bsvc.Close()
		d.bsvc = nil
	}
	if d.socache != nil {
		d.socache.Close()
		d.socache = nil
	}
	d.jlmu.Lock()
	jl := d.jl
	d.jl = nil
	d.jlmu.Unlock()
	if jl != nil {
		jl.Close()
	}
}

// reattachLoop retries opening an unavailable state dir with exponential
// backoff. On success it hands the journal to the lifecycle manager, which
// writes a recovery marker and re-journals every slot's current state.
func (d *daemon) reattachLoop(dir string, o journal.Options) {
	backoff := 250 * time.Millisecond
	for {
		time.Sleep(backoff)
		jl, err := journal.OpenWith(dir, o)
		if err != nil {
			if backoff *= 2; backoff > time.Minute {
				backoff = time.Minute
			}
			continue
		}
		if err := d.mgr.AttachJournal(jl); err != nil {
			// Opened but the marker write failed: the manager keeps the
			// journal and probes it on its own backoff schedule from here.
			fmt.Fprintln(os.Stderr, "merlind: journal re-attach probe:", err)
		} else {
			fmt.Fprintln(os.Stderr, "merlind: state dir recovered, journal re-attached")
		}
		d.jlmu.Lock()
		d.jl = jl
		d.jlmu.Unlock()
		return
	}
}

func main() {
	hookName := flag.String("hook", "xdp", "attachment hook for deployed builds")
	mcpu := flag.Int("mcpu", 2, "instruction set level (2 or 3)")
	shadow := flag.Int("shadow", 32, "clean mirrored runs to clear shadow")
	canary := flag.Int("canary", 32, "clean mirrored runs to clear canary")
	cycleSlack := flag.Float64("cycle-slack", 0.10, "tolerated canary cycle-cost regression")
	insnBudget := flag.Uint64("insn-budget", 0, "watchdog per-run instruction cap (0 = off)")
	cycleBudget := flag.Uint64("cycle-budget", 0, "watchdog per-run cycle cap (0 = off)")
	retries := flag.Int("retries", 3, "quarantine rebuild attempts")
	backoff := flag.Duration("backoff", 100*time.Millisecond, "first quarantine backoff (doubles per retry)")
	autoPromote := flag.Bool("auto-promote", false, "hot-swap automatically once canary clears")
	canaryFraction := flag.Float64("canary-fraction", 0, "hash-routed share of live packets answered by a canary (0..1)")
	guardDiff := flag.Int("guard-diff-inputs", 4, "sampled inputs for build-time differential validation")
	passTimeout := flag.Duration("pass-timeout", guard.DefaultTimeout, "per-pass wall-clock budget")
	seed := flag.Int64("seed", 1, "synthetic traffic seed")
	stateDir := flag.String("state-dir", "", "directory for the crash-safe state journal (empty = in-memory)")
	compactEvery := flag.Int("compact-every", 256, "journal records between snapshot compactions")
	fsyncPolicy := flag.String("fsync-policy", "sync-every-record",
		"journal durability policy: sync-every-record | group-commit | async (stage transitions always fsync)")
	fsyncInterval := flag.Duration("fsync-interval", 2*time.Millisecond, "group-commit background flush interval")
	fsyncBatch := flag.Int("fsync-batch", 32, "group-commit max unsynced records before an inline flush")
	segmentBytes := flag.Int64("journal-segment-bytes", journal.DefaultSegmentBytes,
		"journal segment rotation threshold in bytes")
	listen := flag.String("listen", "", "serve GET /metrics on this TCP address (empty = no HTTP)")
	useSuperopt := flag.Bool("superopt", false, "run the superoptimizer tier on every deploy build")
	superoptCache := flag.String("superopt-cache", "", "persistent superoptimizer verdict cache directory")
	superoptBudget := flag.Int("superopt-budget", superopt.DefaultBudget, "candidate budget per superoptimizer search")
	buildWorkers := flag.Int("build-workers", 2, "build-service worker pool size")
	buildQueue := flag.Int("build-queue", 16, "build-service queue capacity (unique builds waiting for a worker)")
	buildCache := flag.String("build-cache", "", "persistent content-addressed build-artifact cache directory (empty = in-memory)")
	controller := flag.String("controller", "", "run as fleet controller, listening for workers and commands on this TCP address")
	joinAddr := flag.String("join", "", "announce this worker to a fleet controller at this address")
	workerName := flag.String("name", "", "worker name announced to the controller (default w<pid>)")
	control := flag.String("control", "", "serve the line protocol on this TCP address (default 127.0.0.1:0 with -join)")
	rejoinEvery := flag.Duration("rejoin-every", 2*time.Second, "interval between join announcements to the controller")
	replication := flag.Int("replication", 2, "replicas per slot in controller mode (1 = unreplicated)")
	controlToken := flag.String("control-token", "", "shared secret required on every control/join RPC (empty = open)")
	srcFaultRate := flag.Float64("src-fault-rate", 0, "probability of an injected read fault per source-file operation (0 = off)")
	srcFaultSeed := flag.Int64("src-fault-seed", 1, "seed for the source read fault schedule")
	flag.Parse()

	hooks := map[string]ebpf.HookType{
		"xdp": ebpf.HookXDP, "tracepoint": ebpf.HookTracepoint,
		"kprobe": ebpf.HookKprobe, "socket_filter": ebpf.HookSocketFilter,
	}
	hook, ok := hooks[*hookName]
	if !ok {
		fmt.Fprintf(os.Stderr, "merlind: unknown hook %q\n", *hookName)
		os.Exit(2)
	}
	if *passTimeout <= 0 {
		fmt.Fprintln(os.Stderr, "merlind: -pass-timeout must be positive")
		os.Exit(2)
	}
	if math.IsNaN(*canaryFraction) || *canaryFraction < 0 || *canaryFraction > 1 {
		fmt.Fprintf(os.Stderr, "merlind: -canary-fraction must be in [0, 1], got %v\n", *canaryFraction)
		os.Exit(2)
	}
	if *compactEvery <= 0 {
		fmt.Fprintf(os.Stderr, "merlind: -compact-every must be positive, got %d\n", *compactEvery)
		os.Exit(2)
	}
	if *backoff <= 0 {
		fmt.Fprintf(os.Stderr, "merlind: -backoff must be positive, got %v\n", *backoff)
		os.Exit(2)
	}
	pol, err := journal.ParsePolicy(*fsyncPolicy)
	if err != nil {
		fmt.Fprintln(os.Stderr, "merlind: -fsync-policy:", err)
		os.Exit(2)
	}
	if *fsyncInterval <= 0 {
		fmt.Fprintf(os.Stderr, "merlind: -fsync-interval must be positive, got %v\n", *fsyncInterval)
		os.Exit(2)
	}
	if *fsyncBatch <= 0 {
		fmt.Fprintf(os.Stderr, "merlind: -fsync-batch must be positive, got %d\n", *fsyncBatch)
		os.Exit(2)
	}
	if *segmentBytes <= 0 {
		fmt.Fprintf(os.Stderr, "merlind: -journal-segment-bytes must be positive, got %d\n", *segmentBytes)
		os.Exit(2)
	}
	pol.Interval, pol.MaxBatch = *fsyncInterval, *fsyncBatch
	if *superoptCache != "" && !*useSuperopt {
		fmt.Fprintln(os.Stderr, "merlind: -superopt-cache requires -superopt")
		os.Exit(2)
	}
	if *superoptCache != "" && *superoptCache == *stateDir {
		fmt.Fprintln(os.Stderr, "merlind: -superopt-cache and -state-dir must be different directories (each is exclusively locked)")
		os.Exit(2)
	}
	if *buildWorkers <= 0 {
		fmt.Fprintf(os.Stderr, "merlind: -build-workers must be positive, got %d\n", *buildWorkers)
		os.Exit(2)
	}
	if *buildQueue <= 0 {
		fmt.Fprintf(os.Stderr, "merlind: -build-queue must be positive, got %d\n", *buildQueue)
		os.Exit(2)
	}
	if *buildCache != "" && (*buildCache == *stateDir || *buildCache == *superoptCache) {
		fmt.Fprintln(os.Stderr, "merlind: -build-cache must be a different directory from -state-dir and -superopt-cache (each is exclusively locked)")
		os.Exit(2)
	}
	if math.IsNaN(*srcFaultRate) || *srcFaultRate < 0 || *srcFaultRate > 1 {
		fmt.Fprintf(os.Stderr, "merlind: -src-fault-rate must be in [0, 1], got %v\n", *srcFaultRate)
		os.Exit(2)
	}
	if *rejoinEvery <= 0 {
		fmt.Fprintf(os.Stderr, "merlind: -rejoin-every must be positive, got %v\n", *rejoinEvery)
		os.Exit(2)
	}
	if *replication < 1 {
		fmt.Fprintf(os.Stderr, "merlind: -replication must be at least 1, got %d\n", *replication)
		os.Exit(2)
	}
	// Tokens and worker names travel inside space-delimited protocol lines;
	// embedded whitespace would split into extra fields on the far side.
	if strings.ContainsAny(*controlToken, " \t\r\n") {
		fmt.Fprintln(os.Stderr, "merlind: -control-token must not contain whitespace")
		os.Exit(2)
	}
	if strings.ContainsAny(*workerName, " \t\r\n") {
		fmt.Fprintf(os.Stderr, "merlind: -name must not contain whitespace, got %q\n", *workerName)
		os.Exit(2)
	}

	if *controller != "" {
		if *joinAddr != "" || *control != "" {
			fmt.Fprintln(os.Stderr, "merlind: -controller cannot be combined with -join/-control")
			os.Exit(2)
		}
		runController(controllerOpts{
			addr:        *controller,
			stateDir:    *stateDir,
			jopts:       journal.Options{SegmentBytes: *segmentBytes, Policy: pol},
			listen:      *listen,
			seed:        *seed,
			replication: *replication,
			token:       *controlToken,
		})
		return
	}
	if *control == "" && *joinAddr != "" {
		*control = "127.0.0.1:0"
	}
	if *workerName == "" {
		*workerName = fmt.Sprintf("w%d", os.Getpid())
	}

	reg := metrics.New()
	d := &daemon{
		reg: reg,
		fs:  chaos.OS(),
		buildOpts: core.Options{
			Hook: hook, MCPU: *mcpu, KernelALU32: true,
			GuardDiffInputs: *guardDiff, PassTimeout: *passTimeout,
			Metrics: core.NewMetrics(reg),
		},
		deployOpts: lifecycle.DeployOptions{CanaryFraction: *canaryFraction},
		seed:       *seed,
		token:      *controlToken,
	}
	if *srcFaultRate > 0 {
		// Source reads go through a seeded fault injector: deploys see the
		// EIO read failures a real disk produces, and the deploy path (not
		// the incumbent program) absorbs them.
		d.fs = chaos.Wrap(chaos.OS(), chaos.NewRate(*srcFaultSeed, *srcFaultRate, chaos.EIO))
	}
	if *useSuperopt {
		socfg := &superopt.Config{
			Budget:  *superoptBudget,
			Metrics: superopt.NewMetrics(reg),
		}
		if *superoptCache != "" {
			cache, err := superopt.OpenCache(*superoptCache)
			if err != nil {
				fmt.Fprintln(os.Stderr, "merlind: -superopt-cache:", err)
				os.Exit(2)
			}
			d.socache = cache
		} else {
			// A process-wide in-memory cache: repeated builds share verdicts
			// and cacheexport/cachemerge (fleet federation) have something to
			// export even without persistence.
			d.socache = superopt.NewMemCache()
		}
		socfg.Cache = d.socache
		d.buildOpts.Superopt = socfg
	}
	bcfg := buildsvc.Config{
		Workers: *buildWorkers,
		Queue:   *buildQueue,
		Metrics: buildsvc.NewMetrics(reg),
	}
	if *buildCache != "" {
		acache, err := buildsvc.OpenArtifactCache(*buildCache)
		if err != nil {
			// journal.ErrLocked names the holder pid; any open failure is a
			// misconfiguration, so fail fast like -superopt-cache does.
			fmt.Fprintln(os.Stderr, "merlind: -build-cache:", err)
			os.Exit(2)
		}
		bcfg.Cache = acache
	}
	d.bsvc = buildsvc.New(bcfg)
	cfg := lifecycle.Config{
		ShadowRuns:   *shadow,
		CanaryRuns:   *canary,
		CycleSlack:   *cycleSlack,
		InsnBudget:   *insnBudget,
		CycleBudget:  *cycleBudget,
		MaxRetries:   *retries,
		BackoffBase:  *backoff,
		AutoPromote:  *autoPromote,
		Metrics:      reg,
		CompactEvery: *compactEvery,
		VM:           vm.Config{Seed: uint64(*seed), Metrics: vm.NewMetrics(reg)},
	}
	jopts := journal.Options{SegmentBytes: *segmentBytes, Policy: pol}
	var degradedReason string
	if *stateDir != "" {
		jl, err := journal.OpenWith(*stateDir, jopts)
		switch {
		case err == nil:
			d.jl = jl
			cfg.Journal = jl
		case errors.Is(err, journal.ErrLocked):
			// Another daemon owns the state dir; interleaving appends would
			// corrupt it, so this stays fatal.
			fmt.Fprintln(os.Stderr, "merlind: -state-dir:", err)
			os.Exit(2)
		default:
			// Storage is broken, not contended: serve in-memory (degraded)
			// and keep retrying in the background rather than refusing to
			// start.
			fmt.Fprintln(os.Stderr, "merlind: -state-dir unavailable, serving in-memory (degraded):", err)
			degradedReason = err.Error()
		}
		cfg.ResolveSource = d.resolveSource
	}
	d.mgr = lifecycle.NewManager(cfg)
	if *stateDir != "" && d.jl == nil {
		d.mgr.MarkJournalUnavailable(degradedReason)
	}

	if d.jl != nil {
		rs, err := d.mgr.Recover()
		if err != nil {
			// Only impossible configuration errors land here; corrupt state
			// is degraded and counted inside Recover.
			fmt.Fprintln(os.Stderr, "merlind: recover:", err)
			os.Exit(2)
		}
		if rs.CorruptRecords > 0 {
			fmt.Fprintf(os.Stderr, "merlind: state recovered with %d corrupt records discarded\n",
				rs.CorruptRecords)
		}
		fmt.Printf("ok recover %s\n", rs)
		for _, st := range d.mgr.Status() {
			fmt.Println(st)
		}
	}

	if *stateDir != "" && d.jl == nil {
		// Launched only after the startup reads of d.jl above: from here on
		// the field is accessed under jlmu.
		go d.reattachLoop(*stateDir, jopts)
	}

	serveMode := *control != ""
	if *stateDir != "" || serveMode {
		// A flush on SIGINT/SIGTERM captures map mutations since the last
		// transition, then compacts so the next boot replays one snapshot.
		// Installed even when storage is degraded: the journal may have
		// re-attached by the time the signal arrives. In serve mode the
		// signal is also the only orderly way out once stdin has drained.
		sigc := make(chan os.Signal, 1)
		signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
		go func() {
			<-sigc
			if err := d.mgr.Flush(); err != nil {
				fmt.Fprintln(os.Stderr, "merlind: flush on shutdown:", err)
				os.Exit(1)
			}
			d.mgr.Compact()
			d.shutdown()
			os.Exit(0)
		}()
	}

	if *listen != "" {
		ln, err := net.Listen("tcp", *listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "merlind: -listen:", err)
			os.Exit(2)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", d.serveMetrics)
		// Announce the resolved address so scripts can pass :0 and scrape the
		// chosen port. The serve loop is resilient: an accept-loop death is
		// counted, logged, and the listener re-opened — the daemon never
		// silently loses its scrape endpoint while the process lives on.
		fmt.Printf("ok listen %s\n", ln.Addr())
		d.httpSrv = &metrics.ResilientServer{
			ServeErrors: reg.Counter("merlin_http_serve_errors_total",
				"http accept-loop deaths survived by re-listening"),
			OnError: func(err error) { fmt.Fprintln(os.Stderr, "merlind: http:", err) },
		}
		go d.httpSrv.Serve(ln, mux)
	}

	if serveMode {
		addr, err := d.startControl(*control)
		if err != nil {
			fmt.Fprintln(os.Stderr, "merlind: -control:", err)
			os.Exit(2)
		}
		fmt.Printf("ok control %s\n", addr)
		if *joinAddr != "" {
			go announceLoop(*joinAddr, *workerName, addr.String(), *controlToken, *rejoinEvery)
		}
	}

	failed := false
	quitSeen := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" {
			quitSeen = true
			break
		}
		if err := d.dispatch(os.Stdout, line); err != nil {
			failed = true
			fmt.Printf("err %s: %v\n", strings.Fields(line)[0], err)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "merlind: stdin:", err)
		os.Exit(2)
	}
	if serveMode && !quitSeen {
		// The control listener outlives a closed stdin: a worker launched
		// with its input redirected from /dev/null keeps serving the fleet
		// until signaled. An explicit quit still exits.
		select {}
	}
	if *stateDir != "" {
		if err := d.mgr.Flush(); err != nil {
			fmt.Fprintln(os.Stderr, "merlind: flush on exit:", err)
			failed = true
		}
		d.mgr.Compact()
	}
	d.shutdown()
	if failed {
		os.Exit(1)
	}
}

// serveMetrics answers GET /metrics with the shared registry in Prometheus
// text exposition format. CollectMetrics and WriteText are both safe against
// the command loop, so a scrape never blocks traffic.
func (d *daemon) serveMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	d.mgr.CollectMetrics()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := d.reg.WriteText(w); err != nil {
		// The response is already streaming; nothing useful left to do.
		return
	}
}

// dispatch executes one command line and writes its reply lines to w. The
// daemon mutex makes each command atomic against the other input sources
// (stdin and every control-listener connection share one daemon).
func (d *daemon) dispatch(w io.Writer, line string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	args := strings.Fields(line)
	cmd, args := args[0], args[1:]
	switch cmd {
	case "deploy":
		if len(args) < 2 {
			return fmt.Errorf("usage: deploy <slot> <file.mir|corpus:NAME> [func]")
		}
		return d.deploy(w, args[0], args[1], args[2:])
	case "traffic":
		if len(args) != 2 {
			return fmt.Errorf("usage: traffic <slot> <n>")
		}
		n, err := strconv.Atoi(args[1])
		if err != nil || n <= 0 {
			return fmt.Errorf("traffic count must be a positive integer")
		}
		return d.drive(w, args[0], n)
	case "promote":
		if len(args) < 1 {
			return fmt.Errorf("usage: promote <slot> [force]")
		}
		force := len(args) > 1 && args[1] == "force"
		if err := d.mgr.Promote(args[0], force); err != nil {
			return err
		}
		st, _ := d.mgr.StatusOf(args[0])
		fmt.Fprintf(w, "ok promote %s live=gen%d\n", args[0], st.LiveGeneration)
		return nil
	case "rollback":
		if len(args) != 1 {
			return fmt.Errorf("usage: rollback <slot>")
		}
		if err := d.mgr.Rollback(args[0]); err != nil {
			return err
		}
		st, _ := d.mgr.StatusOf(args[0])
		fmt.Fprintf(w, "ok rollback %s live=gen%d\n", args[0], st.LiveGeneration)
		return nil
	case "abort":
		if len(args) != 1 {
			return fmt.Errorf("usage: abort <slot>")
		}
		if err := d.mgr.Abort(args[0]); err != nil {
			return err
		}
		st, _ := d.mgr.StatusOf(args[0])
		fmt.Fprintf(w, "ok abort %s live=gen%d\n", args[0], st.LiveGeneration)
		return nil
	case "drain":
		if len(args) != 1 {
			return fmt.Errorf("usage: drain <slot>")
		}
		removed := d.mgr.Remove(args[0])
		fmt.Fprintf(w, "ok drain %s removed=%v\n", args[0], removed)
		return nil
	case "status":
		for _, st := range d.mgr.Status() {
			fmt.Fprintln(w, st)
		}
		if h := d.mgr.JournalHealth(); h.Configured {
			fmt.Fprintln(w, h)
		}
		if d.httpSrv != nil {
			fmt.Fprintln(w, d.httpSrv.Health())
		}
		fmt.Fprintln(w, "ok status")
		return nil
	case "events":
		if len(args) != 1 {
			return fmt.Errorf("usage: events <slot>")
		}
		for _, ev := range d.mgr.Events(args[0]) {
			fmt.Fprintln(w, ev)
		}
		fmt.Fprintf(w, "ok events %s\n", args[0])
		return nil
	case "maps":
		if len(args) != 1 {
			return fmt.Errorf("usage: maps <slot>")
		}
		dumps, err := d.mgr.LiveMaps(args[0])
		if err != nil {
			return err
		}
		for _, md := range dumps {
			line := fmt.Sprintf("map %s bytes=%d", md.Name, len(md.Data))
			if len(md.Data) >= 8 {
				var v uint64
				for i := 7; i >= 0; i-- {
					v = v<<8 | uint64(md.Data[i])
				}
				line += fmt.Sprintf(" u64[0]=%d", v)
			}
			fmt.Fprintln(w, line)
		}
		fmt.Fprintf(w, "ok maps %s\n", args[0])
		return nil
	case "metrics":
		d.mgr.CollectMetrics()
		if err := d.reg.WriteText(w); err != nil {
			return err
		}
		fmt.Fprintln(w, "ok metrics")
		return nil
	case "tick":
		d.mgr.Tick()
		fmt.Fprintln(w, "ok tick")
		return nil
	case "build":
		if len(args) < 1 {
			return fmt.Errorf("usage: build <file.mir|corpus:NAME> [func]")
		}
		return d.build(w, args[0], args[1:])
	case "cachestats":
		return d.cacheStats(w)
	case "cacheexport":
		var since uint64
		if len(args) > 0 {
			v, err := strconv.ParseUint(args[0], 10, 64)
			if err != nil {
				return fmt.Errorf("cacheexport: since must be a non-negative integer")
			}
			since = v
		}
		return d.cacheExport(w, since)
	case "cachemerge":
		if len(args) != 1 {
			return fmt.Errorf("usage: cachemerge <base64-blob>")
		}
		return d.cacheMerge(w, args[0])
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

// buildRequest resolves a build operand into a content-addressed request.
// Corpus programs are rendered to canonical IR text so the same program
// submitted on two daemons shares one key.
func (d *daemon) buildRequest(src string, rest []string) (buildsvc.Request, error) {
	opts := d.buildOpts
	var source []byte
	var fn string
	if name, ok := strings.CutPrefix(src, "corpus:"); ok {
		spec := findCorpus(name)
		if spec == nil {
			return buildsvc.Request{}, fmt.Errorf("no corpus program %q", name)
		}
		source = []byte(ir.Print(spec.Mod))
		fn = spec.Func
		opts.Hook, opts.MCPU = spec.Hook, spec.MCPU
	} else {
		text, err := chaos.ReadFile(d.fs, src)
		if err != nil {
			return buildsvc.Request{}, err
		}
		mod, err := ir.Parse(string(text))
		if err != nil {
			return buildsvc.Request{}, err
		}
		if len(mod.Funcs) == 0 {
			return buildsvc.Request{}, fmt.Errorf("module has no functions")
		}
		source, fn = text, mod.Funcs[0].Name
	}
	if len(rest) > 0 {
		fn = rest[0]
	}
	return buildsvc.Request{Source: source, Func: fn, Opts: opts}, nil
}

// build runs one submission through the build service and reports the
// outcome plus the producing build's stats — on artifact hits those are the
// stats of the build that filled the entry, served without running a pass.
func (d *daemon) build(w io.Writer, src string, rest []string) error {
	req, err := d.buildRequest(src, rest)
	if err != nil {
		return err
	}
	res, err := d.bsvc.Submit(req)
	if err != nil {
		return err
	}
	st := res.Stats
	fmt.Fprintf(w, "ok build key=%s outcome=%s insns=%d saved=%d searches=%d hits=%d rewrites=%d cycles-saved=%d ms=%d\n",
		buildsvc.ShortKey(res.Key), res.Outcome, st.Insns, st.InsnsSaved,
		st.Searches, st.CacheHits, st.Rewrites, st.CyclesSaved,
		time.Duration(st.BuildNanos).Milliseconds())
	return nil
}

// cacheStats reports the size of both content-addressed caches.
func (d *daemon) cacheStats(w io.Writer) error {
	var verdicts int
	var seq uint64
	if d.socache != nil {
		verdicts, seq = d.socache.Len(), d.socache.Seq()
	}
	fmt.Fprintf(w, "ok cachestats verdicts=%d seq=%d artifacts=%d pending=%d\n",
		verdicts, seq, d.bsvc.Cache().Len(), d.bsvc.Pending())
	return nil
}

// cacheExport emits the superopt verdicts inserted at sequence >= since as
// one base64 line, then the new watermark. The controller's fcache sync
// drives this over the control listener.
func (d *daemon) cacheExport(w io.Writer, since uint64) error {
	if d.socache == nil {
		return fmt.Errorf("no superopt cache (-superopt required)")
	}
	blob, seq, n, err := d.socache.Export(since)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cachedata %s\n", base64.StdEncoding.EncodeToString(blob))
	fmt.Fprintf(w, "ok cacheexport seq=%d entries=%d\n", seq, n)
	return nil
}

// cacheMerge unions a base64 Export blob into the superopt cache. A verdict
// conflict fails the whole merge and mutates nothing.
func (d *daemon) cacheMerge(w io.Writer, b64 string) error {
	if d.socache == nil {
		return fmt.Errorf("no superopt cache (-superopt required)")
	}
	blob, err := base64.StdEncoding.DecodeString(b64)
	if err != nil {
		return fmt.Errorf("cachemerge: bad base64: %v", err)
	}
	st, err := d.socache.Merge(blob)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "ok cachemerge added=%d known=%d total=%d\n", st.Added, st.Known, d.socache.Len())
	return nil
}

// moduleSource resolves a deploy operand (file path or corpus:NAME, plus an
// optional function name) into a lifecycle Source. The same resolution backs
// ResolveSource, so a journaled SourceDesc rebuilds exactly like the deploy
// command that produced it.
func (d *daemon) moduleSource(src string, rest []string) (lifecycle.Source, error) {
	var mod *ir.Module
	var fn string
	opts := d.buildOpts
	if name, ok := strings.CutPrefix(src, "corpus:"); ok {
		spec := findCorpus(name)
		if spec == nil {
			return nil, fmt.Errorf("no corpus program %q", name)
		}
		mod, fn = spec.Mod, spec.Func
		opts.Hook, opts.MCPU = spec.Hook, spec.MCPU
	} else {
		text, err := chaos.ReadFile(d.fs, src)
		if err != nil {
			return nil, err
		}
		mod, err = ir.Parse(string(text))
		if err != nil {
			return nil, err
		}
		if len(mod.Funcs) == 0 {
			return nil, fmt.Errorf("module has no functions")
		}
		fn = mod.Funcs[0].Name
	}
	if len(rest) > 0 {
		fn = rest[0]
	}
	return lifecycle.ModuleSource(mod, fn, opts), nil
}

// resolveSource reattaches a journaled SourceDesc after recovery.
func (d *daemon) resolveSource(desc string) (lifecycle.Source, error) {
	fields := strings.Fields(desc)
	if len(fields) == 0 {
		return nil, fmt.Errorf("empty source descriptor")
	}
	return d.moduleSource(fields[0], fields[1:])
}

// deploy stages a candidate from a textual IR file or a named corpus program.
func (d *daemon) deploy(w io.Writer, slot, src string, rest []string) error {
	source, err := d.moduleSource(src, rest)
	if err != nil {
		return err
	}
	opts := d.deployOpts
	opts.SourceDesc = strings.TrimSpace(src + " " + strings.Join(rest, " "))
	if err := d.mgr.DeployWith(slot, source, opts); err != nil {
		return err
	}
	st, _ := d.mgr.StatusOf(slot)
	fmt.Fprintf(w, "ok deploy %s stage=%s live=gen%d", slot, st.Stage, st.LiveGeneration)
	if st.CandidateGeneration > 0 {
		fmt.Fprintf(w, " candidate=gen%d", st.CandidateGeneration)
	}
	fmt.Fprintln(w)
	return nil
}

// drive serves n synthetic XDP packets through the slot, mirroring them into
// any in-flight candidate, and reports the verdict histogram.
func (d *daemon) drive(w io.Writer, slot string, n int) error {
	inputs := guard.Inputs(ebpf.HookXDP, n, d.seed+d.traffic)
	d.traffic += int64(n)
	verdicts := map[int64]int{}
	for _, in := range inputs {
		rv, _, err := d.mgr.Serve(slot, in.Ctx, in.Pkt)
		if err != nil {
			return err
		}
		verdicts[rv]++
	}
	// Traffic mutates map state without lifecycle transitions; flush so the
	// counters survive a crash between commands.
	if err := d.mgr.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, "merlind: flush after traffic:", err)
	}
	st, _ := d.mgr.StatusOf(slot)
	var vparts []string
	for _, v := range []int64{ebpf.XDPAborted, ebpf.XDPDrop, ebpf.XDPPass, ebpf.XDPTx, ebpf.XDPRedirect} {
		if c := verdicts[v]; c > 0 {
			vparts = append(vparts, fmt.Sprintf("%s=%d", verdictName(v), c))
			delete(verdicts, v)
		}
	}
	for v, c := range verdicts {
		vparts = append(vparts, fmt.Sprintf("%d=%d", v, c))
	}
	fmt.Fprintf(w, "ok traffic %s n=%d stage=%s served=%d mirrored=%d eseq=%d verdicts[%s]\n",
		slot, n, st.Stage, st.Served, st.Mirrored, st.EventSeq, strings.Join(vparts, " "))
	return nil
}

func verdictName(v int64) string {
	switch v {
	case ebpf.XDPAborted:
		return "aborted"
	case ebpf.XDPDrop:
		return "drop"
	case ebpf.XDPPass:
		return "pass"
	case ebpf.XDPTx:
		return "tx"
	case ebpf.XDPRedirect:
		return "redirect"
	}
	return fmt.Sprintf("%d", v)
}

func findCorpus(name string) *corpus.ProgramSpec {
	for _, spec := range corpus.XDP() {
		if spec.Name == name {
			return spec
		}
	}
	return nil
}
