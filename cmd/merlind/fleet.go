// The fleet faces of merlind: as a worker it serves its line protocol on a
// TCP control listener and announces itself to a controller; with
// -controller it becomes the fleet control plane itself, managing worker
// merlinds over internal/fleet — consistent-hash traffic routing, rolling
// canaried deploys, journal-backed recovery, per-worker circuit breakers.
//
// Controller commands (stdin and the control listener speak the same set):
//
//	join <name> <addr>      admit or re-admit a worker (workers send this)
//	workers                 one line listing the known workers
//	fleet                   full fleet status: workers, catalog, rollout
//	placement               one line per slot: replicas, version, live count
//	leave <worker>          drain a worker out of the fleet and its placements
//	fdeploy <slot> <src>    start a rolling deploy of src across the fleet
//	fstep [n]               drive up to n rollout steps (default 1)
//	fwait [max]             step until the rollout settles (default 1000)
//	ftraffic <slot> <n>     fan n packets across the fleet's routable workers
//	fcache                  federate superopt caches: pull worker deltas,
//	                        merge as a union (conflicts abort loudly), push
//	                        the merged cache back to every worker
//	fevents                 dump the fleet event ring
//	fmetrics                fleet-aggregated metrics (controller + workers)
//	tick                    probe down workers, reconcile recovering ones
//	quit                    flush and exit
package main

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"merlin/internal/fleet"
	"merlin/internal/journal"
	"merlin/internal/metrics"
)

// ---- worker side ----------------------------------------------------------

// startControl serves the daemon's line protocol on a TCP listener: one
// scanner loop per connection, each line dispatched exactly like stdin. The
// accept loop logs and continues on transient errors; it never takes the
// daemon down.
func (d *daemon) startControl(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				fmt.Fprintln(os.Stderr, "merlind: control accept:", err)
				time.Sleep(100 * time.Millisecond)
				continue
			}
			go d.serveConn(conn)
		}
	}()
	return ln.Addr(), nil
}

func (d *daemon) serveConn(conn net.Conn) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		// Network callers must authenticate; stdin (the local operator,
		// dispatched in main) is never challenged.
		rest, authed := fleet.CheckAuth(d.token, line)
		if !authed {
			d.reg.Counter("merlin_fleet_auth_failures_total",
				"control RPCs refused for a missing or wrong token").Inc()
			fmt.Fprintln(conn, "err unauthorized")
			continue
		}
		if err := d.dispatch(conn, rest); err != nil {
			fmt.Fprintf(conn, "err %s: %v\n", strings.Fields(rest)[0], err)
		}
	}
}

// announceLoop keeps re-introducing this worker to the controller: the first
// announcement admits it, later ones are cheap idempotent re-joins that pull
// the worker back into the fleet after a controller restart or a healed
// partition without waiting for a controller-side probe.
func announceLoop(ctrlAddr, name, controlAddr, token string, every time.Duration) {
	for {
		if err := announce(ctrlAddr, name, controlAddr, token); err != nil {
			fmt.Fprintln(os.Stderr, "merlind: join:", err)
		}
		time.Sleep(every)
	}
}

func announce(ctrlAddr, name, controlAddr, token string) error {
	conn, err := net.DialTimeout("tcp", ctrlAddr, 2*time.Second)
	if err != nil {
		return err
	}
	defer conn.Close()
	_ = conn.SetDeadline(time.Now().Add(5 * time.Second))
	join := fleet.AuthLine(token, fmt.Sprintf("join %s %s", name, controlAddr))
	if _, err := fmt.Fprintln(conn, join); err != nil {
		return err
	}
	sc := bufio.NewScanner(conn)
	for sc.Scan() {
		l := sc.Text()
		if l == "ok" || strings.HasPrefix(l, "ok ") {
			return nil
		}
		if strings.HasPrefix(l, "err ") {
			return fmt.Errorf("controller: %s", strings.TrimPrefix(l, "err "))
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	return fmt.Errorf("controller closed connection mid-reply")
}

// ---- controller side ------------------------------------------------------

type controllerOpts struct {
	addr        string // control listener address (required)
	stateDir    string // controller journal home ("" = in-memory)
	jopts       journal.Options
	listen      string // HTTP /metrics address ("" = none)
	seed        int64
	replication int    // replicas per slot (>= 1)
	token       string // shared secret for control/join RPCs ("" = open)
}

// runController is merlind's -controller mode: a fleet control plane over
// TCP. Worker merlinds announce themselves with join lines; operators drive
// rollouts over stdin or the same listener; a background ticker probes down
// workers and reconciles recovering ones.
func runController(o controllerOpts) {
	reg := metrics.New()
	ctl := fleet.New(fleet.Config{
		Seed:        uint64(o.seed) | 1,
		Metrics:     reg,
		Replication: o.replication,
		AuthToken:   o.token,
	}, &fleet.TCP{})
	authFails := reg.Counter("merlin_fleet_auth_failures_total",
		"control RPCs refused for a missing or wrong token")

	var jl *journal.Log
	if o.stateDir != "" {
		var err error
		jl, err = journal.OpenWith(o.stateDir, o.jopts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "merlind: -state-dir:", err)
			os.Exit(2)
		}
		ctl.AttachJournal(jl)
		rs, err := ctl.Recover()
		if err != nil {
			fmt.Fprintln(os.Stderr, "merlind: controller recover:", err)
			os.Exit(2)
		}
		// Re-admit the recovered fleet before announcing: recovered workers
		// start Down with an expired breaker, and this first Tick is the
		// probe+reconcile pass that brings the live ones back.
		ctl.Tick()
		phase := rs.RolloutPhase
		if phase == "" {
			phase = "none"
		}
		fmt.Printf("ok frecover workers=%d slots=%d placements=%d rollout=%s\n",
			rs.Workers, rs.Slots, rs.Placements, phase)
	}

	shutdown := func(code int) {
		ctl.Flush()
		if jl != nil {
			jl.Close()
		}
		os.Exit(code)
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGINT, syscall.SIGTERM)
	go func() {
		<-sigc
		shutdown(0)
	}()

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "merlind: -controller:", err)
		os.Exit(2)
	}
	fmt.Printf("ok controller %s\n", ln.Addr())
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				fmt.Fprintln(os.Stderr, "merlind: controller accept:", err)
				time.Sleep(100 * time.Millisecond)
				continue
			}
			go serveControllerConn(ctl, conn, o.token, authFails)
		}
	}()

	if o.listen != "" {
		hln, err := net.Listen("tcp", o.listen)
		if err != nil {
			fmt.Fprintln(os.Stderr, "merlind: -listen:", err)
			os.Exit(2)
		}
		mux := http.NewServeMux()
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			if r.Method != http.MethodGet {
				http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
				return
			}
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = ctl.WriteMetrics(w)
		})
		fmt.Printf("ok listen %s\n", hln.Addr())
		srv := &metrics.ResilientServer{
			ServeErrors: reg.Counter("merlin_http_serve_errors_total",
				"http accept-loop deaths survived by re-listening"),
			OnError: func(err error) { fmt.Fprintln(os.Stderr, "merlind: http:", err) },
		}
		go srv.Serve(hln, mux)
	}

	// The maintenance ticker: re-probe down workers, reconcile recovering
	// ones. Rollout stepping stays explicit (fstep/fwait) so scripts control
	// exactly when the fleet moves.
	go func() {
		for {
			time.Sleep(time.Second)
			ctl.Tick()
		}
	}()

	failed := false
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if line == "quit" {
			ctl.Flush()
			if jl != nil {
				jl.Close()
			}
			if failed {
				os.Exit(1)
			}
			return
		}
		if err := dispatchController(ctl, os.Stdout, line); err != nil {
			failed = true
			fmt.Printf("err %s: %v\n", strings.Fields(line)[0], err)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "merlind: stdin:", err)
		shutdown(2)
	}
	// stdin has drained; keep serving workers until signaled.
	select {}
}

func serveControllerConn(ctl *fleet.Controller, conn net.Conn, token string, authFails *metrics.Counter) {
	defer conn.Close()
	sc := bufio.NewScanner(conn)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		// Worker joins and remote operators alike must present the token;
		// stdin (dispatched in runController) is the local operator and is
		// never challenged.
		rest, authed := fleet.CheckAuth(token, line)
		if !authed {
			authFails.Inc()
			fmt.Fprintln(conn, "err unauthorized")
			continue
		}
		if err := dispatchController(ctl, conn, rest); err != nil {
			fmt.Fprintf(conn, "err %s: %v\n", strings.Fields(rest)[0], err)
		}
	}
}

// dispatchController executes one controller command and writes its reply to
// w. The Controller is safe for concurrent use, so worker joins keep landing
// while stdin drives a rollout.
func dispatchController(ctl *fleet.Controller, w io.Writer, line string) error {
	args := strings.Fields(line)
	cmd, args := args[0], args[1:]
	switch cmd {
	case "join":
		if len(args) != 2 {
			return fmt.Errorf("usage: join <name> <addr>")
		}
		if err := ctl.Join(args[0], args[1]); err != nil {
			return err
		}
		fmt.Fprintf(w, "ok join %s\n", args[0])
		return nil
	case "workers":
		names := ctl.Workers()
		fmt.Fprintf(w, "ok workers n=%d %s\n", len(names), strings.Join(names, " "))
		return nil
	case "fleet":
		for _, l := range ctl.FleetStatus().Lines() {
			fmt.Fprintln(w, l)
		}
		fmt.Fprintln(w, "ok fleet")
		return nil
	case "placement":
		for _, pv := range ctl.FleetStatus().Placements {
			fmt.Fprintf(w, "placement slot=%s ver=%d live=%d/%d replicas=%s\n",
				pv.Slot, pv.Ver, pv.Live, len(pv.Replicas), strings.Join(pv.Replicas, ","))
		}
		fmt.Fprintln(w, "ok placement")
		return nil
	case "leave":
		if len(args) != 1 {
			return fmt.Errorf("usage: leave <worker>")
		}
		if err := ctl.Leave(args[0]); err != nil {
			return err
		}
		fmt.Fprintf(w, "ok leave %s\n", args[0])
		return nil
	case "fdeploy":
		if len(args) < 2 {
			return fmt.Errorf("usage: fdeploy <slot> <src...>")
		}
		if err := ctl.Deploy(args[0], strings.Join(args[1:], " ")); err != nil {
			return err
		}
		fmt.Fprintf(w, "ok fdeploy %s\n", args[0])
		return nil
	case "fstep":
		n := 1
		if len(args) > 0 {
			v, err := strconv.Atoi(args[0])
			if err != nil || v <= 0 {
				return fmt.Errorf("fstep count must be a positive integer")
			}
			n = v
		}
		var done bool
		steps := 0
		for ; steps < n; steps++ {
			var err error
			if done, err = ctl.Step(); err != nil {
				return err
			}
			if done {
				break
			}
		}
		fmt.Fprintf(w, "ok fstep steps=%d done=%v phase=%s\n", steps, done, rolloutPhase(ctl))
		return nil
	case "fwait":
		max := 1000
		if len(args) > 0 {
			v, err := strconv.Atoi(args[0])
			if err != nil || v <= 0 {
				return fmt.Errorf("fwait budget must be a positive integer")
			}
			max = v
		}
		steps := 0
		for ; steps < max; steps++ {
			done, err := ctl.Step()
			if err != nil {
				return err
			}
			if done {
				break
			}
		}
		fmt.Fprintf(w, "ok fwait steps=%d phase=%s\n", steps, rolloutPhase(ctl))
		return nil
	case "ftraffic":
		if len(args) != 2 {
			return fmt.Errorf("usage: ftraffic <slot> <n>")
		}
		n, err := strconv.Atoi(args[1])
		if err != nil || n <= 0 {
			return fmt.Errorf("traffic count must be a positive integer")
		}
		rep := ctl.Traffic(args[0], n)
		fmt.Fprintf(w, "ok ftraffic %s sent=%d rerouted=%d dropped=%d\n",
			args[0], rep.Sent, rep.Rerouted, rep.Dropped)
		return nil
	case "fcache":
		rep, err := ctl.CacheSync()
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "ok fcache %s\n", rep)
		return nil
	case "fevents":
		for _, ev := range ctl.Events() {
			fmt.Fprintln(w, ev.String())
		}
		fmt.Fprintln(w, "ok fevents")
		return nil
	case "fmetrics":
		if err := ctl.WriteMetrics(w); err != nil {
			return err
		}
		fmt.Fprintln(w, "ok fmetrics")
		return nil
	case "tick":
		ctl.Tick()
		fmt.Fprintln(w, "ok tick")
		return nil
	default:
		return fmt.Errorf("unknown command %q", cmd)
	}
}

func rolloutPhase(ctl *fleet.Controller) string {
	if r := ctl.RolloutStatus(); r != nil {
		return r.Phase
	}
	return "none"
}
