// Command merlin-fuzz drives the differential pipeline fuzzer from the
// command line: it generates seeded random programs, builds them through
// the full Merlin pipeline, checks verifier acceptance under both kernel
// heuristics, and executes baseline vs optimized differentially. Any
// divergence prints the offending seed and both disassemblies.
//
// With -inject, each seed additionally derives a deterministic fault
// injector that provokes a failure (panic, stall, semantic corruption,
// structural corruption or an unverifiable rewrite) inside one Merlin pass;
// the build then runs guarded, and the fuzzer checks containment: the final
// program must still verify and match the baseline, with the fault recorded
// in the result.
//
// Usage: merlin-fuzz [-seeds N] [-start S] [-seed S] [-maps] [-v]
//
//	[-inject mode] [-guard] [-guard-diff-inputs N] [-pass-timeout d]
//
// Every failure line includes the seed; re-run exactly one seed with
// -seed S.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"merlin/internal/core"
	"merlin/internal/difftest"
	"merlin/internal/ebpf"
	"merlin/internal/guard"
	"merlin/internal/verifier"
	"merlin/internal/vm"
)

func main() {
	seeds := flag.Int("seeds", 200, "number of seeds to run")
	start := flag.Int64("start", 0, "first seed")
	oneSeed := flag.Int64("seed", -1, "run exactly this seed (overrides -seeds/-start)")
	useMaps := flag.Bool("maps", true, "include map operations")
	verbose := flag.Bool("v", false, "print per-seed stats")
	useGuard := flag.Bool("guard", false, "build with pass-level fault isolation")
	injectMode := flag.String("inject", "", "inject per-seed faults: panic|stall|corrupt|badbranch|unverifiable|auto (implies -guard)")
	guardDiff := flag.Int("guard-diff-inputs", 5, "sampled inputs for per-pass differential validation under -guard")
	passTimeout := flag.Duration("pass-timeout", 200*time.Millisecond, "per-pass budget under -guard")
	flag.Parse()

	cfg := fuzzConfig{
		useMaps: *useMaps, verbose: *verbose,
		guard: *useGuard, guardDiff: *guardDiff, passTimeout: *passTimeout,
	}
	if *injectMode != "" {
		cfg.guard = true
		cfg.inject = true
		if *injectMode != "auto" {
			m, ok := guard.ParseFaultMode(*injectMode)
			if !ok {
				fmt.Fprintf(os.Stderr, "merlin-fuzz: unknown -inject mode %q (want %v or auto)\n", *injectMode, guard.Modes())
				os.Exit(2)
			}
			cfg.mode = m
		}
	}

	first, count := *start, int64(*seeds)
	if *oneSeed >= 0 {
		first, count = *oneSeed, 1
	}
	failures := 0
	var totalBase, totalOpt int
	for seed := first; seed < first+count; seed++ {
		if err := runSeed(seed, cfg, &totalBase, &totalOpt); err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "seed %d: FAIL: %v\nreproduce with: merlin-fuzz -seed %d%s\n",
				seed, err, seed, cfg.repro())
		}
	}
	reduction := 0.0
	if totalBase > 0 {
		reduction = 100 * float64(totalBase-totalOpt) / float64(totalBase)
	}
	fmt.Printf("%d seeds, %d failures; aggregate NI %d -> %d (%.1f%% reduction)\n",
		count, failures, totalBase, totalOpt, reduction)
	if failures > 0 {
		os.Exit(1)
	}
}

type fuzzConfig struct {
	useMaps     bool
	verbose     bool
	guard       bool
	inject      bool
	mode        guard.FaultMode // empty = derive per seed ("auto")
	guardDiff   int
	passTimeout time.Duration
}

// repro renders the flags needed to reproduce a failing seed exactly.
func (c fuzzConfig) repro() string {
	s := ""
	if !c.useMaps {
		s += " -maps=false"
	}
	if c.inject {
		mode := "auto"
		if c.mode != "" {
			mode = string(c.mode)
		}
		s += " -inject " + mode
	} else if c.guard {
		s += " -guard"
	}
	return s
}

func runSeed(seed int64, cfg fuzzConfig, totalBase, totalOpt *int) error {
	mod := difftest.Generate(seed, difftest.GenOptions{UseMaps: cfg.useMaps})
	mcpu := 2
	if seed%3 == 0 {
		mcpu = 3
	}
	opts := core.Options{
		Hook: ebpf.HookTracepoint, MCPU: mcpu, KernelALU32: true, Verify: true,
		Guard: cfg.guard, GuardDiffInputs: cfg.guardDiff, PassTimeout: cfg.passTimeout,
	}
	if !cfg.guard {
		opts.GuardDiffInputs = 0
	}
	var inj *guard.FaultInjector
	if cfg.inject {
		inj = guard.NewFaultInjector(seed)
		if cfg.mode != "" {
			inj.Mode = cfg.mode
		}
		inj.StallFor = 2 * cfg.passTimeout
		opts.Injector = inj
	}
	res, err := core.Build(mod, mod.Funcs[0].Name, opts)
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	if inj.Fired() > 0 && len(res.PassFailures) == 0 && len(res.Culprits) == 0 {
		return fmt.Errorf("injected %s in %s fired but no failure recorded", inj.Mode, inj.Pass)
	}
	if st := verifier.Verify(res.Prog, verifier.Options{Version: verifier.V519}); !st.Passed {
		return fmt.Errorf("v5.19 rejected: %w", st.Err)
	}
	*totalBase += res.Baseline.NI()
	*totalOpt += res.Prog.NI()

	base, err := vm.New(res.Baseline, vm.Config{Seed: 11})
	if err != nil {
		return err
	}
	opt, err := vm.New(res.Prog, vm.Config{Seed: 11})
	if err != nil {
		return err
	}
	for trial := 0; trial < 8; trial++ {
		args := make([]uint64, 8)
		for i := range args {
			args[i] = uint64(seed)*2654435761 + uint64(trial*131+i*17)
		}
		ctx := vm.TracepointContext(args...)
		a, _, err1 := base.Run(ctx, nil)
		b, _, err2 := opt.Run(ctx, nil)
		if (err1 == nil) != (err2 == nil) || a != b {
			return fmt.Errorf("trial %d diverged: %d/%v vs %d/%v\n--- baseline ---\n%s--- optimized ---\n%s",
				trial, a, err1, b, err2,
				ebpf.Disassemble(res.Baseline), ebpf.Disassemble(res.Prog))
		}
	}
	for i := range res.Prog.Maps {
		if string(base.Map(i).Backing()) != string(opt.Map(i).Backing()) {
			return fmt.Errorf("map %d diverged", i)
		}
	}
	if cfg.verbose {
		note := ""
		if inj.Fired() > 0 {
			note = fmt.Sprintf("  [injected %s in %s: contained]", inj.Mode, inj.Pass)
		} else if res.FellBack != "" {
			note = fmt.Sprintf("  [%s fallback]", res.FellBack)
		}
		fmt.Printf("seed %d: NI %d -> %d ok%s\n", seed, res.Baseline.NI(), res.Prog.NI(), note)
	}
	return nil
}
