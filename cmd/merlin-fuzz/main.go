// Command merlin-fuzz drives the differential pipeline fuzzer from the
// command line: it generates seeded random programs, builds them through
// the full Merlin pipeline, checks verifier acceptance under both kernel
// heuristics, and executes baseline vs optimized differentially. Any
// divergence prints the offending seed and both disassemblies.
//
// Usage: merlin-fuzz [-seeds N] [-start S] [-maps] [-v]
package main

import (
	"flag"
	"fmt"
	"os"

	"merlin/internal/core"
	"merlin/internal/difftest"
	"merlin/internal/ebpf"
	"merlin/internal/verifier"
	"merlin/internal/vm"
)

func main() {
	seeds := flag.Int("seeds", 200, "number of seeds to run")
	start := flag.Int64("start", 0, "first seed")
	useMaps := flag.Bool("maps", true, "include map operations")
	verbose := flag.Bool("v", false, "print per-seed stats")
	flag.Parse()

	failures := 0
	var totalBase, totalOpt int
	for seed := *start; seed < *start+int64(*seeds); seed++ {
		if err := runSeed(seed, *useMaps, *verbose, &totalBase, &totalOpt); err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "seed %d: FAIL: %v\n", seed, err)
		}
	}
	fmt.Printf("%d seeds, %d failures; aggregate NI %d -> %d (%.1f%% reduction)\n",
		*seeds, failures, totalBase, totalOpt,
		100*float64(totalBase-totalOpt)/float64(totalBase))
	if failures > 0 {
		os.Exit(1)
	}
}

func runSeed(seed int64, useMaps, verbose bool, totalBase, totalOpt *int) error {
	mod := difftest.Generate(seed, difftest.GenOptions{UseMaps: useMaps})
	mcpu := 2
	if seed%3 == 0 {
		mcpu = 3
	}
	res, err := core.Build(mod, mod.Funcs[0].Name, core.Options{
		Hook: ebpf.HookTracepoint, MCPU: mcpu, KernelALU32: true, Verify: true,
	})
	if err != nil {
		return fmt.Errorf("build: %w", err)
	}
	if st := verifier.Verify(res.Prog, verifier.Options{Version: verifier.V519}); !st.Passed {
		return fmt.Errorf("v5.19 rejected: %w", st.Err)
	}
	*totalBase += res.Baseline.NI()
	*totalOpt += res.Prog.NI()

	base, err := vm.New(res.Baseline, vm.Config{Seed: 11})
	if err != nil {
		return err
	}
	opt, err := vm.New(res.Prog, vm.Config{Seed: 11})
	if err != nil {
		return err
	}
	for trial := 0; trial < 8; trial++ {
		args := make([]uint64, 8)
		for i := range args {
			args[i] = uint64(seed)*2654435761 + uint64(trial*131+i*17)
		}
		ctx := vm.TracepointContext(args...)
		a, _, err1 := base.Run(ctx, nil)
		b, _, err2 := opt.Run(ctx, nil)
		if (err1 == nil) != (err2 == nil) || a != b {
			return fmt.Errorf("trial %d diverged: %d/%v vs %d/%v\n--- baseline ---\n%s--- optimized ---\n%s",
				trial, a, err1, b, err2,
				ebpf.Disassemble(res.Baseline), ebpf.Disassemble(res.Prog))
		}
	}
	for i := range res.Prog.Maps {
		if string(base.Map(i).Backing()) != string(opt.Map(i).Backing()) {
			return fmt.Errorf("map %d diverged", i)
		}
	}
	if verbose {
		fmt.Printf("seed %d: NI %d -> %d ok\n", seed, res.Baseline.NI(), res.Prog.NI())
	}
	return nil
}
