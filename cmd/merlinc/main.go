// Command merlinc compiles a textual IR module through the Merlin pipeline:
// clang-style cleanup, IR refinement, lowering, bytecode refinement, and
// verification. It prints a per-pass report and can emit the baseline and
// optimized programs as object files or disassembly.
//
// Usage:
//
//	merlinc [flags] input.mir
//
//	-func name     entry function (default: first function in the module)
//	-hook type     xdp | tracepoint | kprobe | socket_filter (default xdp)
//	-mcpu N        2 or 3 (default 2)
//	-o file        write the optimized program (JSON object file)
//	-baseline file write the clang-only program too
//	-S             print disassembly of the optimized program
//	-no-verify     skip the simulated kernel verifier
//	-disable list  comma-separated optimizers to disable
//	               (DAO, MoF, CP&DCE, SLM, CC, PO)
//	-guard         run every Merlin pass under fault isolation: panics,
//	               stalls and invalid outputs roll back to the pre-pass
//	               snapshot, and a final verifier rejection bisects the
//	               optimizer set instead of failing the build
//	-guard-diff-inputs N  sampled inputs for per-pass differential
//	               validation under -guard (0 disables; default 4)
//	-pass-timeout d       per-pass wall-clock budget under -guard
//	-metrics       print a build-pipeline metrics summary (Prometheus text
//	               format: per-pass wall time, rollbacks, bisections,
//	               verifier verdicts) after compilation
//	-superopt      run the caching peephole superoptimizer tier after the
//	               Merlin passes (prints a one-line summary)
//	-superopt-cache dir   persist superoptimizer verdicts across builds in
//	               dir (warm builds skip the enumerative search entirely)
//	-superopt-budget N    candidate budget per search (determinism knob;
//	               part of the cache key)
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"merlin/internal/core"
	"merlin/internal/ebpf"
	"merlin/internal/guard"
	"merlin/internal/ir"
	"merlin/internal/metrics"
	"merlin/internal/objfile"
	"merlin/internal/superopt"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "merlinc:", err)
		os.Exit(1)
	}
}

func run() error {
	fnName := flag.String("func", "", "entry function name")
	hookName := flag.String("hook", "xdp", "attachment hook type")
	mcpu := flag.Int("mcpu", 2, "instruction set level (2 or 3)")
	out := flag.String("o", "", "output object file for the optimized program")
	baselineOut := flag.String("baseline", "", "output object file for the clang-only program")
	disasm := flag.Bool("S", false, "print optimized disassembly")
	noVerify := flag.Bool("no-verify", false, "skip verification")
	disable := flag.String("disable", "", "comma-separated optimizers to disable")
	useGuard := flag.Bool("guard", false, "fault-isolate every Merlin pass with validated rollback")
	guardDiff := flag.Int("guard-diff-inputs", 4, "sampled inputs for per-pass differential validation (0 disables)")
	passTimeout := flag.Duration("pass-timeout", guard.DefaultTimeout, "per-pass wall-clock budget under -guard")
	showMetrics := flag.Bool("metrics", false, "print a build-pipeline metrics summary after compilation")
	useSuperopt := flag.Bool("superopt", false, "run the superoptimizer tier after the Merlin passes")
	superoptCache := flag.String("superopt-cache", "", "persistent verdict cache directory for -superopt")
	superoptBudget := flag.Int("superopt-budget", superopt.DefaultBudget, "candidate budget per superoptimizer search")
	flag.Parse()

	if flag.NArg() != 1 {
		return fmt.Errorf("usage: merlinc [flags] input.mir")
	}
	src, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		return err
	}
	mod, err := ir.Parse(string(src))
	if err != nil {
		return err
	}
	if *fnName == "" {
		if len(mod.Funcs) == 0 {
			return fmt.Errorf("module has no functions")
		}
		*fnName = mod.Funcs[0].Name
	}
	hooks := map[string]ebpf.HookType{
		"xdp": ebpf.HookXDP, "tracepoint": ebpf.HookTracepoint,
		"kprobe": ebpf.HookKprobe, "socket_filter": ebpf.HookSocketFilter,
	}
	hook, ok := hooks[*hookName]
	if !ok {
		return fmt.Errorf("unknown hook %q", *hookName)
	}
	if *passTimeout <= 0 {
		return fmt.Errorf("-pass-timeout must be positive (got %v)", *passTimeout)
	}

	opts := core.Options{
		Hook: hook, MCPU: *mcpu, KernelALU32: true, Verify: !*noVerify,
		Guard: *useGuard, GuardDiffInputs: *guardDiff, PassTimeout: *passTimeout,
	}
	var reg *metrics.Registry
	if *showMetrics {
		reg = metrics.New()
		opts.Metrics = core.NewMetrics(reg)
	}
	if *useSuperopt {
		socfg := &superopt.Config{Budget: *superoptBudget}
		if *superoptCache != "" {
			cache, err := superopt.OpenCache(*superoptCache)
			if err != nil {
				return fmt.Errorf("-superopt-cache: %w", err)
			}
			defer cache.Close()
			socfg.Cache = cache
		}
		if reg != nil {
			socfg.Metrics = superopt.NewMetrics(reg)
		}
		opts.Superopt = socfg
	}
	if *disable != "" {
		valid := map[string]bool{}
		for _, o := range core.AllOptimizers() {
			valid[string(o)] = true
		}
		disabled := map[string]bool{}
		for _, d := range strings.Split(*disable, ",") {
			d = strings.TrimSpace(d)
			if d == "" {
				continue
			}
			if !valid[d] {
				return fmt.Errorf("unknown optimizer %q in -disable (valid: %v)", d, core.AllOptimizers())
			}
			disabled[d] = true
		}
		enable := []core.Optimizer{} // non-nil: empty means "none", nil means "all"
		for _, o := range core.AllOptimizers() {
			if !disabled[string(o)] {
				enable = append(enable, o)
			}
		}
		opts.Enable = enable
	}

	res, err := core.Build(mod, *fnName, opts)
	if err != nil {
		return err
	}

	fmt.Printf("%-14s %6s %10s %10s\n", "pass", "tier", "applied", "time")
	for _, st := range res.Stats {
		fmt.Printf("%-14s %6s %10d %10s\n", st.Name, st.Tier, st.Applied, st.Duration.Round(0))
	}
	for _, f := range res.PassFailures {
		fmt.Fprintf(os.Stderr, "guard: %s\n", f)
	}
	if len(res.Culprits) > 0 {
		fmt.Fprintf(os.Stderr, "guard: culprit optimizers: %v\n", res.Culprits)
	}
	if res.FellBack != "" {
		fmt.Fprintf(os.Stderr, "guard: degraded build (%s fallback)\n", res.FellBack)
	}
	if st := res.Superopt; st != nil {
		fmt.Printf("superopt: windows=%d hits=%d misses=%d searches=%d rewrites=%d insns-saved=%d cycles-saved=%d\n",
			st.Windows, st.CacheHits, st.CacheMisses, st.Searches, st.Rewrites, st.InsnsSaved, st.CyclesSaved)
		if st.Reverted {
			fmt.Fprintln(os.Stderr, "warning: superopt rewrites reverted (whole-program recheck failed)")
		}
	}
	fmt.Printf("\nNI: %d -> %d  (%.1f%% reduction)\n",
		res.Baseline.NI(), res.Prog.NI(), res.NIReduction()*100)
	if !*noVerify && !res.BaselineVerification.Passed {
		fmt.Fprintf(os.Stderr, "warning: baseline rejected by verifier: %v\n", res.BaselineVerification.Err)
	}
	if !*noVerify {
		fmt.Printf("verifier: NPI %d -> %d, states %d -> %d, %s -> %s\n",
			res.BaselineVerification.NPI, res.Verification.NPI,
			res.BaselineVerification.TotalStates, res.Verification.TotalStates,
			res.BaselineVerification.Duration.Round(0), res.Verification.Duration.Round(0))
	}
	if *disasm {
		fmt.Println("\n" + ebpf.Disassemble(res.Prog))
	}
	if reg != nil {
		fmt.Println("\n-- build metrics --")
		if err := reg.WriteText(os.Stdout); err != nil {
			return err
		}
	}
	if *out != "" {
		if err := objfile.Write(*out, res.Prog); err != nil {
			return err
		}
	}
	if *baselineOut != "" {
		if err := objfile.Write(*baselineOut, res.Baseline); err != nil {
			return err
		}
	}
	return nil
}
