// Command merlin-objdump disassembles a compiled program object file in the
// verifier-log style, with slot numbers and map summaries.
//
// Usage: merlin-objdump prog.json
package main

import (
	"flag"
	"fmt"
	"os"

	"merlin/internal/ebpf"
	"merlin/internal/objfile"
)

func main() {
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: merlin-objdump prog.json")
		os.Exit(1)
	}
	prog, err := objfile.Read(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "merlin-objdump:", err)
		os.Exit(1)
	}
	fmt.Printf("program %s  hook=%s  mcpu=v%d  NI=%d\n", prog.Name, prog.Hook, prog.MCPU, prog.NI())
	for i, m := range prog.Maps {
		fmt.Printf("map %d: %-24s key=%d value=%d max=%d\n", i, m.Name, m.KeySize, m.ValueSize, m.MaxEntries)
	}
	fmt.Println()
	fmt.Print(ebpf.Disassemble(prog))
}
