// Command merlin-bench regenerates the paper's tables and figures from the
// reproduction corpus. Each subcommand prints one artifact; "all" runs
// everything. The -full flag disables suite sampling (slow but exhaustive).
//
// The vmbench subcommand benchmarks the execution engine itself (seed
// interpreter loop vs pre-decoded batch serving); -batch sets its packets
// per RunBatch call, -vm-floor gates on the corpus-aggregate seed/batch
// speedup, and -vm-json appends the run to a trajectory artifact.
//
// The buildbench subcommand benchmarks the optimization-as-a-service path
// (internal/buildsvc): cold superopt builds vs artifact-cache hits vs builds
// on a federated verdict cache that never searched; -build-budget sets the
// superopt search budget and -build-json appends the run to a trajectory
// artifact (bench_build.json in CI).
//
// Usage:
//
//	merlin-bench [-full] [-batch n] [-vm-floor x] [-vm-json path]
//	             [-build-budget n] [-build-json path]
//	             <table1|table2|table3|table4|table5|
//	              fig10a|fig10b|fig10c|fig10d|fig10e|fig10f|
//	              fig11|fig12|fig13a|fig13b|fig14|fig15|
//	              vmbench|buildbench|all>
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"merlin/internal/core"
	"merlin/internal/experiments"
	"merlin/internal/netbench"
)

func main() {
	full := flag.Bool("full", false, "run on the full suites (no sampling)")
	batch := flag.Int("batch", netbench.DefaultBatchSize, "vmbench: packets per RunBatch call")
	vmFloor := flag.Float64("vm-floor", 0, "vmbench: fail unless the aggregate seed/batch speedup reaches this factor")
	vmJSON := flag.String("vm-json", "", "vmbench: append the run to this JSON trajectory artifact")
	buildBudget := flag.Int("build-budget", 0, "buildbench: superopt search budget (0 = superopt default)")
	buildJSON := flag.String("build-json", "", "buildbench: append the run to this JSON trajectory artifact")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: merlin-bench [-full] <experiment|all>")
		os.Exit(1)
	}
	cfg := experiments.DefaultConfig()
	if *full {
		cfg = experiments.Full()
	}
	cmd := flag.Arg(0)
	cmds := map[string]func(experiments.Config) error{
		"table1": table1, "table2": table2, "table3": table3,
		"table4": table4, "table5": table5,
		"fig10a": figCompact("sysdig"), "fig10b": figCompact("tracee"),
		"fig10c": figCompact("tetragon"), "fig10d": figCompact("xdp"),
		"fig10e": fig10e, "fig10f": fig10f,
		"fig11": fig11, "fig12": fig12,
		"fig13a": fig13a, "fig13b": fig13b,
		"fig14": fig14, "fig15": fig15,
		"vmbench": func(cfg experiments.Config) error {
			return vmbench(cfg, *batch, *vmFloor, *vmJSON)
		},
		"buildbench": func(cfg experiments.Config) error {
			return buildbench(*buildBudget, *buildJSON)
		},
	}
	if cmd == "all" {
		names := make([]string, 0, len(cmds))
		for n := range cmds {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("==================== %s ====================\n", n)
			if err := cmds[n](cfg); err != nil {
				fmt.Fprintf(os.Stderr, "merlin-bench: %s: %v\n", n, err)
				os.Exit(1)
			}
			fmt.Println()
		}
		return
	}
	fn, ok := cmds[cmd]
	if !ok {
		fmt.Fprintf(os.Stderr, "merlin-bench: unknown experiment %q\n", cmd)
		os.Exit(1)
	}
	if err := fn(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "merlin-bench:", err)
		os.Exit(1)
	}
}

func vmbench(cfg experiments.Config, batch int, floor float64, jsonPath string) error {
	// The -full flag buys longer measurement windows (less noise) rather
	// than suite sampling: vmbench always runs the whole XDP corpus.
	dur := 30 * time.Millisecond
	if cfg.SuiteStride == 1 {
		dur = 200 * time.Millisecond
	}
	res, err := experiments.VMBench(batch, dur)
	if err != nil {
		return err
	}
	fmt.Printf("VM engine throughput (XDP corpus, batch=%d, %s/loop)\n", res.BatchSize, dur)
	fmt.Printf("%-22s %6s %10s %10s %10s %11s %13s\n",
		"program", "NI", "seed ns", "single ns", "batch ns", "seed/batch", "single/batch")
	for _, r := range res.Rows {
		fmt.Printf("%-22s %6d %10.1f %10.1f %10.1f %10.2fx %12.2fx\n",
			r.Program, r.NI, r.SeedNs, r.SingleNs, r.BatchNs, r.SeedSpeedup(), r.SingleSpeedup())
	}
	fmt.Printf("%-22s %6s %10.1f %10.1f %10.1f %10.2fx %12.2fx\n",
		"corpus pass (equal-pkt)", "", res.SeedNs, res.SingleNs, res.BatchNs,
		res.SeedSpeedup(), res.SingleSpeedup())
	if jsonPath != "" {
		if err := experiments.AppendVMBenchJSON(jsonPath, res); err != nil {
			return fmt.Errorf("vmbench: writing %s: %w", jsonPath, err)
		}
		fmt.Printf("trajectory appended to %s\n", jsonPath)
	}
	if floor > 0 && res.SeedSpeedup() < floor {
		return fmt.Errorf("vmbench: aggregate seed/batch speedup %.2fx below the %.2fx floor",
			res.SeedSpeedup(), floor)
	}
	return nil
}

func buildbench(budget int, jsonPath string) error {
	res, err := experiments.BuildBench(budget)
	if err != nil {
		return err
	}
	fmt.Printf("Build service latency (XDP corpus, superopt budget=%d)\n", res.Budget)
	fmt.Printf("%-22s %6s %10s %10s %10s %9s %8s\n",
		"program", "NI", "cold us", "warm us", "fed us", "searches", "fed hits")
	for _, r := range res.Rows {
		fmt.Printf("%-22s %6d %10.1f %10.1f %10.1f %9d %8d\n",
			r.Program, r.NI, float64(r.ColdNs)/1e3, float64(r.WarmNs)/1e3,
			float64(r.FedNs)/1e3, r.ColdSearches, r.FedHits)
	}
	fmt.Printf("%-22s %6s %10.1f %10.1f %10.1f\n", "corpus total", "",
		float64(res.ColdNs)/1e3, float64(res.WarmNs)/1e3, float64(res.FedNs)/1e3)
	fmt.Printf("warm speedup %.2fx (artifact cache), federated speedup %.2fx (verdicts without searching)\n",
		res.WarmSpeedup(), res.FedSpeedup())
	if jsonPath != "" {
		if err := experiments.AppendBuildBenchJSON(jsonPath, res); err != nil {
			return fmt.Errorf("buildbench: writing %s: %w", jsonPath, err)
		}
		fmt.Printf("trajectory appended to %s\n", jsonPath)
	}
	return nil
}

func table1(cfg experiments.Config) error {
	rows, err := experiments.Table1(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Table 1: Details of Benchmarks")
	fmt.Printf("%-10s %8s %9s %10s %9s %6s\n", "Suite", "Programs", "Largest", "Smallest", "Average", "mcpu")
	for _, r := range rows {
		fmt.Printf("%-10s %8d %9d %10d %9d %6s\n", r.Suite, r.Count, r.Largest, r.Smallest, r.Average, r.MCPU)
	}
	return nil
}

func table2(experiments.Config) error {
	fmt.Println("Table 2: Limitation of K2 and Merlin")
	fmt.Printf("%-8s %-17s %-10s %-26s %-10s\n", "System", "Instruction Set", "Hooks", "Helper Functions", "Size")
	for _, r := range experiments.Table2() {
		fmt.Printf("%-8s %-17s %-10s %-26s %-10s\n", r.System, r.InstructionSets, r.Hooks, r.HelperFunctions, r.MaxSize)
	}
	return nil
}

func table3(cfg experiments.Config) error {
	rows, err := experiments.Table3(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Table 3: Throughput and Latency")
	fmt.Printf("%-18s | %-23s | %s\n", "", "Throughput (Mpps)", "Latency (us) per load: clang/k2/merlin")
	fmt.Printf("%-18s | %7s %7s %7s |", "program", "clang", "k2", "merlin")
	for _, l := range []string{"low", "medium", "high", "saturate"} {
		fmt.Printf(" %-26s", l)
	}
	fmt.Println()
	for _, r := range rows {
		fmt.Printf("%-18s | %7.3f %7.3f %7.3f |", r.Program,
			r.ThroughputClang, r.ThroughputK2, r.ThroughputMerlin)
		for li := 0; li < 4; li++ {
			fmt.Printf(" %8.2f/%8.2f/%8.2f", r.LatencyUS[li][0], r.LatencyUS[li][1], r.LatencyUS[li][2])
		}
		fmt.Println()
	}
	return nil
}

func table4(cfg experiments.Config) error {
	suites, err := experiments.Table4(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Table 4: Security Application Benchmarks")
	fmt.Printf("%-18s %9s", "Test", "Vanilla")
	for _, s := range suites {
		fmt.Printf(" | %-28s", s.Suite+" w/o | w/ | red.")
	}
	fmt.Println()
	for i := range suites[0].Micro {
		m0 := suites[0].Micro[i]
		fmt.Printf("%-18s %8.2fu", m0.Op.Name, m0.VanillaUS)
		for _, s := range suites {
			m := s.Micro[i]
			fmt.Printf(" | %8.2f %8.2f %6.1f%%", m.WithoutUS, m.WithUS, m.Reduction*100)
		}
		fmt.Println()
	}
	fmt.Printf("%-18s %9s", "Average (micro)", "")
	for _, s := range suites {
		fmt.Printf(" | %8s %8s %6.1f%%", "", "", s.AvgMicro*100)
	}
	fmt.Println()
	fmt.Printf("%-18s %8.2fs", "Postmark", suites[0].Macro.VanillaS)
	for _, s := range suites {
		fmt.Printf(" | %8.2f %8.2f %6.1f%%", s.Macro.WithoutS, s.Macro.WithS, s.Macro.Reduction*100)
	}
	fmt.Println()
	return nil
}

func table5(experiments.Config) error {
	rows, err := experiments.Table5()
	if err != nil {
		return err
	}
	fmt.Println("Table 5: State Change Over Kernel Versions")
	fmt.Printf("%-12s %-8s %-24s %10s\n", "Metric", "Kernel", "Program", "Change")
	for _, r := range rows {
		fmt.Printf("%-12s %-8s %-24s %+9.2f%%\n", r.Metric, r.Kernel, r.Program, r.Change)
	}
	return nil
}

func figCompact(suite string) func(experiments.Config) error {
	return func(cfg experiments.Config) error {
		rows, err := experiments.Compactness(suite, cfg)
		if err != nil {
			return err
		}
		fmt.Printf("Fig 10 (%s): NI reduction by optimizer\n", suite)
		fmt.Printf("%-28s %8s %8s | %7s %7s %7s %7s %7s %7s | %7s\n",
			"program", "base NI", "opt NI", "DAO", "MoF", "CP&DCE", "SLM", "CC", "PO", "total")
		for _, r := range rows {
			fmt.Printf("%-28s %8d %8d |", r.Program, r.BaselineNI, r.OptimizedNI)
			for _, o := range []core.Optimizer{core.DAO, core.MoF, core.CPDCE, core.SLM, core.CC, core.PO} {
				fmt.Printf(" %6.2f%%", r.Contribution[o]*100)
			}
			fmt.Printf(" | %6.2f%%\n", r.Total*100)
		}
		return nil
	}
}

func fig10e(cfg experiments.Config) error {
	rows, err := experiments.Fig10e(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Fig 10e: Compactness Comparison with K2 (XDP)")
	fmt.Printf("%-22s %8s %9s %9s %5s\n", "program", "base NI", "merlin", "k2", "k2 ok")
	for _, r := range rows {
		fmt.Printf("%-22s %8d %8.2f%% %8.2f%% %5v\n",
			r.Program, r.BaselineNI, r.MerlinReduction*100, r.K2Reduction*100, r.K2Supported)
	}
	return nil
}

func fig10f(cfg experiments.Config) error {
	rows, err := experiments.Fig10f(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Fig 10f: Impact on Verifier (NPI and time reduction)")
	fmt.Printf("%-28s %10s %10s %8s %8s\n", "program", "NPI before", "NPI after", "NPI red.", "time red.")
	for _, r := range rows {
		fmt.Printf("%-28s %10d %10d %7.2f%% %7.2f%%\n",
			r.Program, r.NPIBefore, r.NPIAfter, r.NPIReduction*100, r.TimeReduction*100)
	}
	return nil
}

func fig11(cfg experiments.Config) error {
	rows, err := experiments.Fig11(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Fig 11: Hardware Performance Counters (XDP)")
	fmt.Printf("%-18s %-7s %-9s %12s %12s %12s %12s\n",
		"program", "system", "load", "cacheMiss/1k", "cacheRef/1k", "brMiss/1k", "ctxSw/5s")
	for _, r := range rows {
		fmt.Printf("%-18s %-7s %-9s %12.2f %12.2f %12.2f %12.0f\n",
			r.Program, r.System, r.Load, r.CacheMissPer1k, r.CacheRefPer1k, r.BranchMissPer1k, r.ContextSwitches)
	}
	return nil
}

func fig12(cfg experiments.Config) error {
	rows, err := experiments.Fig12(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Fig 12: Hardware Counters of Security Applications (% of original)")
	fmt.Printf("%-10s %8s %8s %8s %8s %10s %10s\n",
		"suite", "insns%", "cycles%", "cache%", "branch%", "insn save", "cyc save")
	for _, r := range rows {
		fmt.Printf("%-10s %7.1f%% %7.1f%% %7.1f%% %7.1f%% %10.1f %10.1f\n",
			r.Suite, r.InstructionsPercent, r.CyclesPercent, r.CacheMissPercent,
			r.BranchMissPercent, r.InstructionsSaved, r.CyclesSaved)
	}
	return nil
}

func fig13a(cfg experiments.Config) error {
	rows, err := experiments.Fig13a(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Fig 13a: Compilation Cost of Optimizers")
	fmt.Printf("%-28s %8s %10s %10s %10s %10s %10s %10s %10s %10s\n",
		"program", "NI", "DAO", "MoF", "Dep", "CP&DCE", "SLM", "CC", "PO", "total")
	for _, r := range rows {
		fmt.Printf("%-28s %8d", r.Program, r.NI)
		for _, p := range []string{"DAO", "MoF", "Dep", "CP&DCE", "SLM", "CC", "PO"} {
			fmt.Printf(" %10s", r.PassTimes[p].Round(time.Microsecond))
		}
		fmt.Printf(" %10s\n", r.Total.Round(time.Microsecond))
	}
	return nil
}

func fig13b(cfg experiments.Config) error {
	rows, err := experiments.Fig13b(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Fig 13b: Compilation Cost vs K2 (K2 modeled from its calibrated search-time curve)")
	fmt.Printf("%-22s %8s %12s %14s %14s\n", "program", "NI", "merlin", "k2 (modeled)", "speedup")
	for _, r := range rows {
		fmt.Printf("%-22s %8d %12s %14s %13.0fx\n",
			r.Program, r.NI, r.MerlinTime.Round(time.Microsecond), r.K2Time.Round(time.Second), r.Speedup)
	}
	return nil
}

func fig14(cfg experiments.Config) error {
	rows, err := experiments.Fig14(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Fig 14: Latency and Throughput of xdp-balancer (cumulative optimizers)")
	fmt.Printf("%-9s %7s %8s %10s %10s %10s %10s %12s %10s\n",
		"stage", "NI", "Mpps", "lat low", "lat med", "lat high", "lat sat", "cacheMiss/1k", "ctxSw/5s")
	for _, r := range rows {
		fmt.Printf("%-9s %7d %8.3f %10.2f %10.2f %10.2f %10.2f %12.2f %10.0f\n",
			r.Stage, r.NI, r.ThroughputMpps,
			r.LatencyUS[0], r.LatencyUS[1], r.LatencyUS[2], r.LatencyUS[3],
			r.CacheMissPer1k, r.CtxSwitches)
	}
	return nil
}

func fig15(cfg experiments.Config) error {
	rows, err := experiments.Fig15(cfg)
	if err != nil {
		return err
	}
	fmt.Println("Fig 15: Overhead of Sysdig (cumulative optimizers)")
	fmt.Printf("%-9s %10s %10s %12s %12s\n", "stage", "NI red.", "NPI red.", "verif red.", "overhead red.")
	for _, r := range rows {
		fmt.Printf("%-9s %9.2f%% %9.2f%% %11.2f%% %11.2f%%\n",
			r.Stage, r.NIReduction*100, r.NPIReduction*100, r.VerifTimeReduction*100, r.OverheadReduction*100)
	}
	return nil
}
