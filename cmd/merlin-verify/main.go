// Command merlin-verify runs the simulated kernel verifier on a compiled
// program object file and prints the verdict plus the verifier's cost
// statistics (NPI, state counts, wall time). With -log it also prints the
// kernel-style per-instruction trace.
//
// Usage: merlin-verify [-kernel 5.19|6.5] [-log] prog.json
package main

import (
	"flag"
	"fmt"
	"os"

	"merlin/internal/objfile"
	"merlin/internal/verifier"
)

func main() {
	kernel := flag.String("kernel", "6.5", "verifier heuristics version (5.19 or 6.5)")
	showLog := flag.Bool("log", false, "print the per-instruction verifier log")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: merlin-verify [-kernel V] [-log] prog.json")
		os.Exit(1)
	}
	prog, err := objfile.Read(flag.Arg(0))
	if err != nil {
		fmt.Fprintln(os.Stderr, "merlin-verify:", err)
		os.Exit(1)
	}
	ver := verifier.V65
	if *kernel == "5.19" {
		ver = verifier.V519
	}
	level := 0
	if *showLog {
		level = 4
	}
	st := verifier.Verify(prog, verifier.Options{Version: ver, LogLevel: level})
	if *showLog {
		fmt.Print(st.Log)
	}
	fmt.Printf("program: %s (NI=%d, hook=%s)\n", prog.Name, prog.NI(), prog.Hook)
	fmt.Printf("kernel:  %s heuristics\n", *kernel)
	fmt.Printf("insn_processed: %d\n", st.NPI)
	fmt.Printf("states: total=%d peak=%d\n", st.TotalStates, st.PeakStates)
	fmt.Printf("time: %s\n", st.Duration.Round(0))
	if st.Passed {
		fmt.Println("verdict: ACCEPTED")
		return
	}
	fmt.Printf("verdict: REJECTED: %v\n", st.Err)
	os.Exit(1)
}
