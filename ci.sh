#!/bin/sh
# CI gate: formatting, static checks, full build, the test suite under the
# race detector, and a merlind lifecycle smoke run. Run from the repository
# root.
set -eux

UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...

# Lifecycle smoke: deploy → mirror traffic → hot-swap → rollback must all
# answer "ok" (merlind exits non-zero if any command fails).
printf '%s\n' \
    'deploy smoke corpus:xdp1' \
    'traffic smoke 4' \
    'deploy smoke corpus:xdp1' \
    'traffic smoke 10' \
    'promote smoke' \
    'rollback smoke' \
    'status' \
    'events smoke' \
    'quit' \
    | go run ./cmd/merlind -shadow 4 -canary 4
