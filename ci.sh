#!/bin/sh
# CI gate: formatting, static checks, full build, the test suite under the
# race detector, and a merlind lifecycle smoke run. Run from the repository
# root.
set -eux

UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...

# The multi-slot telemetry stress test gets an extra -count=2 pass under the
# race detector: it is the one test that races live traffic against
# deploy/promote/rollback churn while sampling the registry.
go test -race -count=2 -run 'TestMultiSlotStress' ./internal/lifecycle/

# Lifecycle smoke: deploy → mirror traffic → hot-swap → rollback must all
# answer "ok" (merlind exits non-zero if any command fails), and the metrics
# dump must account for every one of the 4+10 packets driven above.
SMOKE_OUT=$(printf '%s\n' \
    'deploy smoke corpus:xdp1' \
    'traffic smoke 4' \
    'deploy smoke corpus:xdp1' \
    'traffic smoke 10' \
    'promote smoke' \
    'rollback smoke' \
    'status' \
    'events smoke' \
    'metrics' \
    'quit' \
    | go run ./cmd/merlind -shadow 4 -canary 4)
echo "$SMOKE_OUT"
echo "$SMOKE_OUT" | grep -q 'merlin_lifecycle_served_total{slot="smoke"} 14'

# Crash-recovery smoke: deploy → promote with a -state-dir, SIGKILL the
# daemon (no flush, no cleanup), restart on the same state dir, and the
# promoted generation plus a non-zero recovered_slots metric must come back.
go build -o /tmp/merlind-smoke ./cmd/merlind
STATE_DIR=$(mktemp -d)
SMOKE_FIFO=$(mktemp -u)
mkfifo "$SMOKE_FIFO"
/tmp/merlind-smoke -state-dir "$STATE_DIR" -shadow 2 -canary 2 \
    < "$SMOKE_FIFO" > /tmp/merlind-smoke-out &
SMOKE_PID=$!
exec 9> "$SMOKE_FIFO"
printf '%s\n' \
    'deploy smoke corpus:xdp_pktcntr' \
    'traffic smoke 6' \
    'deploy smoke corpus:xdp_pktcntr' \
    'traffic smoke 6' \
    'promote smoke' \
    'traffic smoke 4' \
    'maps smoke' >&9
# Wait for the last command's ack so the journal holds the promoted state,
# then kill hard: SIGKILL leaves no chance to flush or clean up.
for _ in $(seq 1 100); do
    grep -q 'ok maps smoke' /tmp/merlind-smoke-out && break
    sleep 0.1
done
grep -q 'ok promote smoke live=gen2' /tmp/merlind-smoke-out
kill -9 "$SMOKE_PID"
exec 9>&-
rm -f "$SMOKE_FIFO"
wait "$SMOKE_PID" || true

RECOVER_OUT=$(printf '%s\n' 'status' 'maps smoke' 'metrics' 'quit' \
    | /tmp/merlind-smoke -state-dir "$STATE_DIR" -shadow 2 -canary 2)
echo "$RECOVER_OUT"
echo "$RECOVER_OUT" | grep -q 'ok recover slots=1'
echo "$RECOVER_OUT" | grep -q 'slot=smoke stage=live live=gen2'
echo "$RECOVER_OUT" | grep -q 'map cntrs_array bytes=256 u64\[0\]=16'
echo "$RECOVER_OUT" | grep -q 'merlin_lifecycle_recovered_slots 1'
rm -rf "$STATE_DIR" /tmp/merlind-smoke /tmp/merlind-smoke-out

# Superoptimizer smoke: a cold build against an empty cache must search and
# find at least one rewrite on this ALU-chain module; a second build against
# the same cache must be fully warm — at least one hit and zero searches.
SO_DIR=$(mktemp -d)
cat > "$SO_DIR/sochain.mir" <<'EOF'
module "sochain"

func fold(%ctx: ptr) -> i64 {
entry:
  %data = load ptr, %ctx, align 8
  %endp = gep %ctx, 8
  %end = load ptr, %endp, align 8
  %lim = bin add i64 %data, 14
  %short = icmp ugt i64 %lim, %end
  condbr %short, drop, work
drop:
  ret 1
work:
  %p = load ptr, %ctx, align 8
  %v = load i64, %p, align 8
  %a = bin add i64 %v, 5
  %b = bin add i64 %a, 3
  %c = bin add i64 %b, 7
  %d = bin mul i64 %c, 1
  %e = bin xor i64 %d, 0
  %f = bin add i64 %e, 0
  ret %f
}
EOF
COLD_OUT=$(go run ./cmd/merlinc -superopt -superopt-cache "$SO_DIR/cache" "$SO_DIR/sochain.mir")
echo "$COLD_OUT"
echo "$COLD_OUT" | grep -q 'superopt: .*hits=0 '
echo "$COLD_OUT" | grep -Eq 'superopt: .*rewrites=[1-9]'
WARM_OUT=$(go run ./cmd/merlinc -superopt -superopt-cache "$SO_DIR/cache" "$SO_DIR/sochain.mir")
echo "$WARM_OUT"
echo "$WARM_OUT" | grep -Eq 'superopt: .*hits=[1-9]'
echo "$WARM_OUT" | grep -q 'searches=0 '
rm -rf "$SO_DIR"

# Superoptimizer differential fuzz: a short randomized hunt for any program
# where the superopt build diverges from the Merlin-only build.
go test -run FuzzSuperopt -fuzz FuzzSuperopt -fuzztime 20s ./internal/difftest/

# Execution-engine differential fuzz: the same hunt for any generated
# program where the pre-decoded engine diverges from the reference switch
# interpreter.
go test -run FuzzVMEquivalence -fuzz FuzzVMEquivalence -fuzztime 20s ./internal/difftest/

# Execution-engine throughput gate: batch serving on the pre-decoded engine
# must beat the seed serving loop (reference interpreter, per-packet context
# allocation) by at least MERLIN_VM_FLOOR on the corpus-aggregate ratio.
# Measured headroom is ~4.5-4.8x on an idle machine; the default floor of
# 3.0 absorbs shared-runner noise while still catching any real regression
# to pre-engine throughput. Each run appends to the bench_vm.json
# trajectory so throughput history survives across CI runs.
MERLIN_VM_FLOOR="${MERLIN_VM_FLOOR:-3.0}"
go run ./cmd/merlin-bench -vm-floor "$MERLIN_VM_FLOOR" -vm-json bench_vm.json vmbench

# Build-service latency trajectory: cold superopt builds vs artifact-cache
# hits vs builds against a federated verdict cache, over the XDP corpus.
# buildbench itself asserts the cache discipline (warm builds come back
# cached, federated builds run zero searches); each run appends to the
# bench_build.json trajectory like vmbench does.
go run ./cmd/merlin-bench -build-json bench_build.json buildbench

# Storage-chaos soak: seeded faults (ENOSPC/EIO/torn writes) at ~1% on every
# journal I/O site while concurrent traffic races deploy/promote/rollback
# churn, under the race detector. The incumbent must never fail a serve, and
# the post-soak audit replays a truncation-prefix sweep across every
# surviving journal segment.
MERLIN_SOAK_OPS=200 MERLIN_SOAK_SEEDS=2 \
    go test -race -run 'TestChaosSoak|TestSoakGroupCommitBatches' ./internal/soak/

# Degraded-mode smoke: an uncreatable -state-dir (a regular file blocks the
# path, which fails MkdirAll even for root) must not stop merlind from
# serving, and the outage must be visible in status and the metrics dump.
DEG_DIR=$(mktemp -d)
touch "$DEG_DIR/blocker"
DEG_OUT=$(printf '%s\n' \
    'deploy deg corpus:xdp1' \
    'traffic deg 4' \
    'status' \
    'metrics' \
    'quit' \
    | go run ./cmd/merlind -state-dir "$DEG_DIR/blocker/state" -shadow 2 -canary 2 2>&1)
echo "$DEG_OUT"
echo "$DEG_OUT" | grep -q 'serving in-memory (degraded)'
echo "$DEG_OUT" | grep -q 'ok traffic deg'
echo "$DEG_OUT" | grep -q 'journal=degraded'
echo "$DEG_OUT" | grep -q 'merlin_journal_degraded 1'
rm -rf "$DEG_DIR"

# Fleet smoke: a controller and two worker merlinds over loopback TCP. A
# rolling deploy must reach every worker; killing a worker mid-rollout must
# halt and roll the fleet back (never half-promoted) while traffic reroutes
# with zero drops and the fleet reports degraded; the worker rejoins clean;
# killing the controller mid-rollout must recover the in-flight rollout from
# its journal and drive it to completion.
go build -o /tmp/merlind-fleet ./cmd/merlind
FLEET_STATE=$(mktemp -d)
CTL_FIFO=$(mktemp -u)
mkfifo "$CTL_FIFO"
/tmp/merlind-fleet -controller 127.0.0.1:0 -state-dir "$FLEET_STATE" \
    < "$CTL_FIFO" > /tmp/fleet-ctl-out 2>&1 &
CTL_PID=$!
exec 8> "$CTL_FIFO"
for _ in $(seq 1 100); do
    grep -q 'ok controller ' /tmp/fleet-ctl-out && break
    sleep 0.1
done
CTL_ADDR=$(grep 'ok controller ' /tmp/fleet-ctl-out | head -1 | awk '{print $3}')

/tmp/merlind-fleet -join "$CTL_ADDR" -name w1 -rejoin-every 250ms \
    -shadow 2 -canary 2 < /dev/null > /tmp/fleet-w1-out 2>&1 &
W1_PID=$!
/tmp/merlind-fleet -join "$CTL_ADDR" -name w2 -rejoin-every 250ms \
    -shadow 2 -canary 2 < /dev/null > /tmp/fleet-w2-out 2>&1 &
W2_PID=$!
for _ in $(seq 1 100); do
    printf 'workers\n' >&8
    sleep 0.1
    grep -q 'ok workers n=2' /tmp/fleet-ctl-out && break
done
grep -q 'ok workers n=2' /tmp/fleet-ctl-out

# Rolling deploy to both workers, then fan traffic over the hash ring.
printf 'fdeploy lb corpus:xdp1\nfwait\n' >&8
for _ in $(seq 1 300); do
    grep -q 'ok fwait ' /tmp/fleet-ctl-out && break
    sleep 0.1
done
grep -q 'ok fwait .*phase=done' /tmp/fleet-ctl-out
printf 'ftraffic lb 16\n' >&8
for _ in $(seq 1 100); do
    grep -q 'ok ftraffic lb ' /tmp/fleet-ctl-out && break
    sleep 0.1
done
grep -q 'ok ftraffic lb sent=16 rerouted=0 dropped=0' /tmp/fleet-ctl-out

# SIGKILL w2 mid-rollout: the rollout must halt and roll back rather than
# promote a version only part of the fleet can run.
printf 'fdeploy lb corpus:xdp1\n' >&8
for _ in $(seq 1 100); do
    grep -c 'ok fdeploy lb' /tmp/fleet-ctl-out | grep -q '^2$' && break
    sleep 0.1
done
printf 'fstep 1\n' >&8
for _ in $(seq 1 100); do
    grep -q 'ok fstep ' /tmp/fleet-ctl-out && break
    sleep 0.1
done
kill -9 "$W2_PID"
wait "$W2_PID" || true
printf 'fwait\n' >&8
for _ in $(seq 1 600); do
    grep -q 'ok fwait .*phase=failed' /tmp/fleet-ctl-out && break
    sleep 0.1
done
grep -q 'ok fwait .*phase=failed' /tmp/fleet-ctl-out
printf 'fevents\n' >&8
for _ in $(seq 1 100); do
    grep -q 'rollout-halted' /tmp/fleet-ctl-out && break
    sleep 0.1
done
grep -q 'rollout-halted' /tmp/fleet-ctl-out
# Traffic still flows around the dead worker with zero drops, and the fleet
# reports itself degraded once consecutive failures take w2 down.
for _ in $(seq 1 200); do
    printf 'ftraffic lb 16\nfleet\n' >&8
    sleep 0.1
    grep -q 'degraded=true' /tmp/fleet-ctl-out && break
done
grep -q 'degraded=true' /tmp/fleet-ctl-out
! grep -q 'dropped=[1-9]' /tmp/fleet-ctl-out
printf 'fmetrics\n' >&8
for _ in $(seq 1 100); do
    grep -q 'merlin_fleet_degraded 1' /tmp/fleet-ctl-out && break
    sleep 0.1
done
grep -q 'merlin_fleet_degraded 1' /tmp/fleet-ctl-out
grep -q 'merlin_fleet_rollouts_rolled_back_total 1' /tmp/fleet-ctl-out

# A fresh w2 under the same name rejoins via its announce loop; reconcile
# pushes the blessed catalog version back onto it and degradation clears.
/tmp/merlind-fleet -join "$CTL_ADDR" -name w2 -rejoin-every 250ms \
    -shadow 2 -canary 2 < /dev/null > /tmp/fleet-w2b-out 2>&1 &
W2_PID=$!
for _ in $(seq 1 200); do
    printf 'fleet\n' >&8
    sleep 0.1
    grep -q 'degraded=false' /tmp/fleet-ctl-out && break
done
grep -q 'degraded=false' /tmp/fleet-ctl-out

# SIGKILL the controller mid-rollout; its successor on the same state dir
# must recover the in-flight rollout from the journal and complete it.
printf 'fdeploy lb corpus:xdp1\nfstep 2\n' >&8
for _ in $(seq 1 100); do
    grep -c 'ok fstep ' /tmp/fleet-ctl-out | grep -q '^2$' && break
    sleep 0.1
done
kill -9 "$CTL_PID"
exec 8>&-
rm -f "$CTL_FIFO"
wait "$CTL_PID" || true

CTL2_FIFO=$(mktemp -u)
mkfifo "$CTL2_FIFO"
/tmp/merlind-fleet -controller "$CTL_ADDR" -state-dir "$FLEET_STATE" \
    < "$CTL2_FIFO" > /tmp/fleet-ctl2-out 2>&1 &
CTL2_PID=$!
exec 8> "$CTL2_FIFO"
for _ in $(seq 1 100); do
    grep -q 'ok controller ' /tmp/fleet-ctl2-out && break
    sleep 0.1
done
grep -q 'ok frecover workers=2 slots=1' /tmp/fleet-ctl2-out
! grep -q 'rollout=none' /tmp/fleet-ctl2-out
printf 'fwait\n' >&8
for _ in $(seq 1 600); do
    grep -q 'ok fwait ' /tmp/fleet-ctl2-out && break
    sleep 0.1
done
grep -q 'ok fwait .*phase=done' /tmp/fleet-ctl2-out
printf 'ftraffic lb 8\nfmetrics\nquit\n' >&8
wait "$CTL2_PID"
grep -q 'ok ftraffic lb sent=8 rerouted=0 dropped=0' /tmp/fleet-ctl2-out
grep -q 'merlin_fleet_workers{' /tmp/fleet-ctl2-out
grep -q 'worker="w1"' /tmp/fleet-ctl2-out
kill -9 "$W1_PID" "$W2_PID" || true
exec 8>&-
rm -rf "$FLEET_STATE" "$CTL2_FIFO" \
    /tmp/fleet-ctl-out /tmp/fleet-ctl2-out /tmp/fleet-w1-out /tmp/fleet-w2-out /tmp/fleet-w2b-out

# Federation smoke: a controller and two -superopt workers with their own
# stdin FIFOs. Worker A pays for the enumerative searches on a cold build of
# the ALU-chain module; one controller fcache round pulls A's verdict delta
# and pushes the merged union to worker B; the same build on worker B — a
# daemon that never ran a single search — must still come back strictly
# improved (saved>0) with searches=0 and every window verdict a cache hit.
FED_DIR=$(mktemp -d)
cat > "$FED_DIR/sochain.mir" <<'EOF'
module "sochain"

func fold(%ctx: ptr) -> i64 {
entry:
  %data = load ptr, %ctx, align 8
  %endp = gep %ctx, 8
  %end = load ptr, %endp, align 8
  %lim = bin add i64 %data, 14
  %short = icmp ugt i64 %lim, %end
  condbr %short, drop, work
drop:
  ret 1
work:
  %p = load ptr, %ctx, align 8
  %v = load i64, %p, align 8
  %a = bin add i64 %v, 5
  %b = bin add i64 %a, 3
  %c = bin add i64 %b, 7
  %d = bin mul i64 %c, 1
  %e = bin xor i64 %d, 0
  %f = bin add i64 %e, 0
  ret %f
}
EOF
go build -o /tmp/merlind-fed ./cmd/merlind
FCTL_FIFO=$(mktemp -u)
mkfifo "$FCTL_FIFO"
/tmp/merlind-fed -controller 127.0.0.1:0 -state-dir "$FED_DIR/state" \
    < "$FCTL_FIFO" > /tmp/fed-ctl-out 2>&1 &
FCTL_PID=$!
exec 8> "$FCTL_FIFO"
for _ in $(seq 1 100); do
    grep -q 'ok controller ' /tmp/fed-ctl-out && break
    sleep 0.1
done
FCTL_ADDR=$(grep 'ok controller ' /tmp/fed-ctl-out | head -1 | awk '{print $3}')

FWA_FIFO=$(mktemp -u)
FWB_FIFO=$(mktemp -u)
mkfifo "$FWA_FIFO" "$FWB_FIFO"
/tmp/merlind-fed -join "$FCTL_ADDR" -name wa -rejoin-every 250ms -superopt \
    -shadow 2 -canary 2 < "$FWA_FIFO" > /tmp/fed-wa-out 2>&1 &
FWA_PID=$!
exec 6> "$FWA_FIFO"
/tmp/merlind-fed -join "$FCTL_ADDR" -name wb -rejoin-every 250ms -superopt \
    -shadow 2 -canary 2 < "$FWB_FIFO" > /tmp/fed-wb-out 2>&1 &
FWB_PID=$!
exec 7> "$FWB_FIFO"
for _ in $(seq 1 100); do
    printf 'workers\n' >&8
    sleep 0.1
    grep -q 'ok workers n=2' /tmp/fed-ctl-out && break
done
grep -q 'ok workers n=2' /tmp/fed-ctl-out

# Cold build on worker A: must search (cache empty) and find rewrites.
printf 'build %s\n' "$FED_DIR/sochain.mir" >&6
for _ in $(seq 1 100); do
    grep -q 'ok build ' /tmp/fed-wa-out && break
    sleep 0.1
done
grep -q 'ok build .*outcome=built' /tmp/fed-wa-out
grep -Eq 'ok build .*searches=[1-9]' /tmp/fed-wa-out

# One federation round: both workers pulled, the union pushed to both.
printf 'fcache\n' >&8
for _ in $(seq 1 100); do
    grep -q 'ok fcache ' /tmp/fed-ctl-out && break
    sleep 0.1
done
grep -q 'ok fcache workers=2 pulled=2 .*pushed=2 skipped=0' /tmp/fed-ctl-out

# Warm build on worker B: same source, zero searches, every verdict a hit,
# and the program still comes back smaller than the baseline.
printf 'build %s\nmetrics\n' "$FED_DIR/sochain.mir" >&7
for _ in $(seq 1 100); do
    grep -q 'ok build ' /tmp/fed-wb-out && break
    sleep 0.1
done
grep -q 'ok build .*outcome=built' /tmp/fed-wb-out
grep -q 'searches=0 hits=[1-9]' /tmp/fed-wb-out
grep -Eq 'ok build .*saved=[1-9]' /tmp/fed-wb-out
for _ in $(seq 1 100); do
    grep -q 'merlin_superopt_cache_hits_total [1-9]' /tmp/fed-wb-out && break
    sleep 0.1
done
grep -q 'merlin_superopt_cache_hits_total [1-9]' /tmp/fed-wb-out
grep -q 'merlin_superopt_searches_total 0' /tmp/fed-wb-out
grep -q 'merlin_build_outcomes_total{outcome="built"} 1' /tmp/fed-wb-out

printf 'quit\n' >&6
printf 'quit\n' >&7
printf 'quit\n' >&8
wait "$FWA_PID" "$FWB_PID" "$FCTL_PID"
exec 6>&- 7>&- 8>&-
rm -rf "$FED_DIR" "$FCTL_FIFO" "$FWA_FIFO" "$FWB_FIFO" /tmp/merlind-fed \
    /tmp/fed-ctl-out /tmp/fed-wa-out /tmp/fed-wb-out

# Placement smoke: 3 workers, replication 2, authenticated control plane.
# Joins without the shared token must be refused; each slot lands on exactly
# two workers; SIGKILLing one replica mid-traffic must drop zero fan-outs
# (failover to the surviving replica) while the rebalancer repairs the slot
# onto the third worker (under_replicated 1 -> 0); a SIGKILLed controller
# must recover the placement map from its journal.
PLACE_STATE=$(mktemp -d)
PCTL_FIFO=$(mktemp -u)
mkfifo "$PCTL_FIFO"
/tmp/merlind-fleet -controller 127.0.0.1:0 -state-dir "$PLACE_STATE" \
    -replication 2 -control-token s3cr3t \
    < "$PCTL_FIFO" > /tmp/place-ctl-out 2>&1 &
PCTL_PID=$!
exec 8> "$PCTL_FIFO"
for _ in $(seq 1 100); do
    grep -q 'ok controller ' /tmp/place-ctl-out && break
    sleep 0.1
done
PCTL_ADDR=$(grep 'ok controller ' /tmp/place-ctl-out | head -1 | awk '{print $3}')

for i in 1 2 3; do
    /tmp/merlind-fleet -join "$PCTL_ADDR" -name "w$i" -rejoin-every 250ms \
        -control-token s3cr3t -shadow 2 -canary 2 \
        < /dev/null > "/tmp/place-w$i-out" 2>&1 &
    eval "PW${i}_PID=\$!"
done
for _ in $(seq 1 100); do
    printf 'workers\n' >&8
    sleep 0.1
    grep -q 'ok workers n=3' /tmp/place-ctl-out && break
done
grep -q 'ok workers n=3' /tmp/place-ctl-out

# A tokenless worker's joins must be refused: never admitted, and every
# refusal counts in the controller's auth-failure series.
/tmp/merlind-fleet -join "$PCTL_ADDR" -name intruder -rejoin-every 100ms \
    -shadow 2 -canary 2 < /dev/null > /tmp/place-bad-out 2>&1 &
PBAD_PID=$!
for _ in $(seq 1 100); do
    printf 'fmetrics\n' >&8
    sleep 0.1
    grep -q 'merlin_fleet_auth_failures_total [1-9]' /tmp/place-ctl-out && break
done
grep -q 'merlin_fleet_auth_failures_total [1-9]' /tmp/place-ctl-out
kill -9 "$PBAD_PID" || true
printf 'workers\n' >&8
sleep 0.3
! grep -q 'ok workers n=4' /tmp/place-ctl-out

# Deploy: the slot must land on exactly two of the three workers.
printf 'fdeploy lb corpus:xdp1\nfwait\n' >&8
for _ in $(seq 1 300); do
    grep -q 'ok fwait ' /tmp/place-ctl-out && break
    sleep 0.1
done
grep -q 'ok fwait .*phase=done' /tmp/place-ctl-out
printf 'placement\n' >&8
for _ in $(seq 1 100); do
    grep -q 'ok placement' /tmp/place-ctl-out && break
    sleep 0.1
done
grep -q 'placement slot=lb ver=1 live=2/2 replicas=' /tmp/place-ctl-out
VICTIM=$(grep 'placement slot=lb ' /tmp/place-ctl-out | head -1 \
    | sed 's/.*replicas=//' | cut -d, -f1)
eval "VICTIM_PID=\$PW${VICTIM#w}_PID"

# SIGKILL one replica mid-traffic: zero dropped fan-outs throughout (a live
# replica always holds the slot), the fleet notices the under-replication,
# and the rebalancer repairs onto the spare worker through the gates.
kill -9 "$VICTIM_PID"
wait "$VICTIM_PID" || true
for _ in $(seq 1 200); do
    printf 'ftraffic lb 16\nfmetrics\n' >&8
    sleep 0.1
    grep -q 'merlin_fleet_under_replicated 1' /tmp/place-ctl-out && break
done
grep -q 'merlin_fleet_under_replicated 1' /tmp/place-ctl-out
for _ in $(seq 1 600); do
    printf 'ftraffic lb 16\nplacement\nfmetrics\n' >&8
    sleep 0.1
    grep -q 'merlin_fleet_repairs_completed_total{mode="[a-z]*"} [1-9]' /tmp/place-ctl-out \
        && grep -q 'placement slot=lb ver=2 ' /tmp/place-ctl-out && break
done
grep -q 'merlin_fleet_repairs_completed_total{mode="[a-z]*"} [1-9]' /tmp/place-ctl-out
grep 'placement slot=lb ver=2 ' /tmp/place-ctl-out | head -1 \
    | sed 's/.*replicas=//' | grep -qv "$VICTIM"
printf 'fmetrics\n' >&8
for _ in $(seq 1 100); do
    printf 'fmetrics\n' >&8
    sleep 0.1
    grep -q 'merlin_fleet_under_replicated 0' /tmp/place-ctl-out && break
done
grep -q 'merlin_fleet_under_replicated 0' /tmp/place-ctl-out
! grep -q 'dropped=[1-9]' /tmp/place-ctl-out

# The controller dies; its successor recovers the exact placement map.
kill -9 "$PCTL_PID"
exec 8>&-
rm -f "$PCTL_FIFO"
wait "$PCTL_PID" || true
PCTL2_FIFO=$(mktemp -u)
mkfifo "$PCTL2_FIFO"
/tmp/merlind-fleet -controller "$PCTL_ADDR" -state-dir "$PLACE_STATE" \
    -replication 2 -control-token s3cr3t \
    < "$PCTL2_FIFO" > /tmp/place-ctl2-out 2>&1 &
PCTL2_PID=$!
exec 8> "$PCTL2_FIFO"
for _ in $(seq 1 100); do
    grep -q 'ok controller ' /tmp/place-ctl2-out && break
    sleep 0.1
done
grep -q 'ok frecover workers=3 slots=1 placements=1' /tmp/place-ctl2-out
for _ in $(seq 1 200); do
    printf 'ftraffic lb 16\nplacement\n' >&8
    sleep 0.1
    grep -q 'ok placement' /tmp/place-ctl2-out && break
done
grep 'placement slot=lb ' /tmp/place-ctl2-out | head -1 \
    | sed 's/.*replicas=//' | grep -qv "$VICTIM"
! grep -q 'dropped=[1-9]' /tmp/place-ctl2-out
printf 'quit\n' >&8
wait "$PCTL2_PID"
kill -9 "$PW1_PID" "$PW2_PID" "$PW3_PID" 2>/dev/null || true
exec 8>&-
rm -rf "$PLACE_STATE" "$PCTL2_FIFO" /tmp/merlind-fleet \
    /tmp/place-ctl-out /tmp/place-ctl2-out /tmp/place-w1-out /tmp/place-w2-out \
    /tmp/place-w3-out /tmp/place-bad-out

# Fleet soaks: seeded worker SIGKILLs and one-way partitions against a live
# fleet under the race detector, plus the replica-loss soak (R=2, token-armed,
# one replica SIGKILLed and one partitioned with zero drops, self-healing
# repair, controller recovery). The audits fail the run if a fan-out drops a
# packet while any continuously-reachable worker held the program, if a
# diverging candidate is ever promoted fleet-wide, or if a slot stays lost or
# under-replicated after the chaos heals.
go test -race -run 'TestFleetSoak|TestReplicaLoss' ./internal/soak/
