#!/bin/sh
# CI gate: formatting, static checks, full build, the test suite under the
# race detector, and a merlind lifecycle smoke run. Run from the repository
# root.
set -eux

UNFORMATTED=$(gofmt -l .)
if [ -n "$UNFORMATTED" ]; then
    echo "gofmt needed on:" >&2
    echo "$UNFORMATTED" >&2
    exit 1
fi

go vet ./...
go build ./...
go test -race ./...

# The multi-slot telemetry stress test gets an extra -count=2 pass under the
# race detector: it is the one test that races live traffic against
# deploy/promote/rollback churn while sampling the registry.
go test -race -count=2 -run 'TestMultiSlotStress' ./internal/lifecycle/

# Lifecycle smoke: deploy → mirror traffic → hot-swap → rollback must all
# answer "ok" (merlind exits non-zero if any command fails), and the metrics
# dump must account for every one of the 4+10 packets driven above.
SMOKE_OUT=$(printf '%s\n' \
    'deploy smoke corpus:xdp1' \
    'traffic smoke 4' \
    'deploy smoke corpus:xdp1' \
    'traffic smoke 10' \
    'promote smoke' \
    'rollback smoke' \
    'status' \
    'events smoke' \
    'metrics' \
    'quit' \
    | go run ./cmd/merlind -shadow 4 -canary 4)
echo "$SMOKE_OUT"
echo "$SMOKE_OUT" | grep -q 'merlin_lifecycle_served_total{slot="smoke"} 14'
